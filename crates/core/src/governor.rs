//! The adaptive resource governor: feedback-driven [`MergeGrant`]s from
//! live load signals.
//!
//! Section 9's scheduling hook — "a scheduling algorithm could constantly
//! analyze the available bandwidth and thus adjust the degree of
//! parallelization for the merge process" — is exactly a feedback loop:
//! sample what the workload is doing, then size the next merge's resource
//! grant accordingly. The static [`MergePolicy`] picked one grant at
//! configuration time; the [`ResourceGovernor`] picks one **per poll
//! round** from three signal families:
//!
//! * **Read pressure** — process-wide lock-free query counters bumped by
//!   every `hyrise-query` executor run ([`begin_read`]); the governor
//!   derives queries/second and in-flight counts between polls.
//! * **Write pressure** — the merge source's delta growth between polls
//!   (insert tuples/second, corrected for tuples the merges of the window
//!   moved out), classified against the paper's Section 4 update-rate
//!   targets via [`rate::classify_update_rate`], with Equation 1
//!   ([`rate::update_rate`]) reporting the window's *sustained* rate.
//! * **Memory pressure** — [`MemoryReport`] accounting over the source's
//!   partitions against a configured soft limit.
//!
//! The decision table (first match wins; see [`GrantSignal`]):
//!
//! | signal            | strategy          | threads           | budget K          |
//! |-------------------|-------------------|-------------------|-------------------|
//! | memory pressure   | policy's          | policy's          | `pressure_budget` |
//! | read-contended    | `Naive`           | half the policy's | policy's          |
//! | queue-deep        | policy's          | half the policy's | policy's          |
//! | write burst       | `Parallel`        | `max_threads`     | policy's          |
//! | read-idle         | policy's          | `max_threads`     | policy's          |
//! | baseline          | policy's          | policy's          | policy's          |
//!
//! Rationale: under memory pressure the budget (not the algorithm) is the
//! lever — K-column commits cap the transient ~2x working set. Under read
//! contention the merge should stay off the memory bus the scans are
//! saturating: `Naive` skips the delta re-encode and the `X_M`/`X_D`
//! auxiliary streams of the optimized stages, trading extra CPU (its
//! binary-search Step 2) for less bandwidth, and the thread grant halves.
//! A deep query-pool queue ([`crate::pool::global_queue_depth`]) is the
//! same story seen from the scheduler's side — morsel tasks waiting for
//! workers — so it also halves the thread grant, but keeps the policy's
//! strategy: the queue clears fastest when the merge yields *cores*, and
//! the backlog says nothing about bandwidth.
//! A write burst or a read-idle window is the opposite — the merge should
//! take the machine (the paper's "merging with all available resources")
//! while it is cheap to do so.
//!
//! Every decision lands in a bounded ring ([`ResourceGovernor::recent_grants`])
//! so schedulers expose *why* each merge ran the way it did; the
//! `shard_scalability` harness prints that trace next to its per-stage
//! columns.
//!
//! Both [`crate::scheduler::SourceScheduler`] and
//! [`crate::shard::ShardedScheduler`] poll through [`ResourceGovernor::plan`]
//! — one decision core instead of two hand-rolled loops. For a sharded
//! view the plan also ranks shards by `delta fraction × pressure` and
//! selects at most `max_concurrent` of them; the pressure factor makes
//! merges *more* eager under write/memory pressure and never less eager
//! than the static trigger, so a governed scheduler bounds the delta at
//! least as tightly as the policy it was built from.

use crate::manager::MergePolicy;
use crate::pipeline::{MergeBudget, MergeGrant, MergeStrategy};
use crate::rate::{self, WriteLoad};
use crate::scheduler::MergeOutcome;
use hyrise_storage::MemoryReport;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Read-pressure counters
// ---------------------------------------------------------------------------

/// Queries started, process-wide. Monotonic; the governor differences
/// successive samples, so wrap-around is a non-issue in practice.
static READS_STARTED: AtomicU64 = AtomicU64::new(0);
/// Queries finished, process-wide.
static READS_FINISHED: AtomicU64 = AtomicU64::new(0);

/// RAII handle for one engine execution: created by [`begin_read`] at the
/// start of an executor run, counts the run as finished on drop. Holding
/// it keeps the run visible in [`ReadLoad::in_flight`].
#[must_use = "dropping the guard immediately records a zero-length read"]
pub struct ReadGuard {
    _not_send_sync_irrelevant: (),
}

/// Record the start of one query-engine execution (lock-free; two relaxed
/// atomic increments per query in total). `hyrise-query` calls this at
/// every executor entry point; anything else that wants its reads weighed
/// by the governor (e.g. the workload driver's window scans) may too.
/// Registration is once per *query*: fan-out executors hold one guard
/// across their per-shard engine runs and morsel workers never register,
/// so the counters track query arrival — internal parallelism shows up in
/// the pool queue depth signal instead.
pub fn begin_read() -> ReadGuard {
    READS_STARTED.fetch_add(1, Ordering::Relaxed);
    ReadGuard {
        _not_send_sync_irrelevant: (),
    }
}

impl Drop for ReadGuard {
    fn drop(&mut self) {
        READS_FINISHED.fetch_add(1, Ordering::Relaxed);
    }
}

/// A sample of the process-wide read counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReadLoad {
    /// Engine executions started since process start.
    pub started: u64,
    /// Engine executions finished since process start.
    pub finished: u64,
}

impl ReadLoad {
    /// Executions currently running.
    pub fn in_flight(&self) -> u64 {
        self.started.saturating_sub(self.finished)
    }
}

/// Sample the process-wide read counters.
pub fn read_load() -> ReadLoad {
    // `finished` first: sampling `started` later can only overestimate
    // in-flight, never produce finished > started.
    let finished = READS_FINISHED.load(Ordering::Relaxed);
    let started = READS_STARTED.load(Ordering::Relaxed);
    ReadLoad { started, finished }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Tuning knobs for a [`ResourceGovernor`]. Start from
/// [`GovernorConfig::from_policy`] (which reproduces the static policy's
/// behavior except for opportunistic thread raises) and tighten from
/// there; the README's governor section walks through the knobs.
#[derive(Clone, Debug)]
pub struct GovernorConfig {
    /// The baseline: trigger fraction and default grant. The governor's
    /// adaptive grants are deviations from this policy's grant.
    pub policy: MergePolicy,
    /// Thread ceiling for the write-burst / read-idle raises (defaults to
    /// the host's `available_parallelism`).
    pub max_threads: usize,
    /// Soft cap on the source's total bytes ([`MemoryReport::total`]);
    /// above it the governor shrinks the merge budget to
    /// [`Self::pressure_budget`]. `usize::MAX` disables the signal.
    pub memory_soft_limit: usize,
    /// The column budget granted under memory pressure (default: one
    /// column at a time — the paper's Section 4 partial-column strategy at
    /// its tightest).
    pub pressure_budget: MergeBudget,
    /// Engine runs/second *below* which (with nothing in flight) the
    /// workload counts as read-idle.
    pub idle_reads_per_sec: f64,
    /// Engine runs/second *above* which the workload counts as
    /// read-contended.
    pub busy_reads_per_sec: f64,
    /// Queued-but-unclaimed tasks on the shared query pool *above* which
    /// the round counts as queue-deep: scans are waiting for workers, so
    /// the next merge grant gives cores back (half the policy's threads).
    /// `usize::MAX` disables the signal.
    pub deep_queue_depth: usize,
}

impl GovernorConfig {
    /// A governor configuration that keeps `policy`'s trigger and grant as
    /// the baseline, with memory pressure disabled and conservative read
    /// thresholds.
    pub fn from_policy(policy: MergePolicy) -> Self {
        Self {
            policy,
            max_threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            memory_soft_limit: usize::MAX,
            pressure_budget: MergeBudget::columns(1),
            idle_reads_per_sec: 1.0,
            busy_reads_per_sec: 100.0,
            deep_queue_depth: 4 * std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }

    /// Builder-style soft memory limit (bytes).
    pub fn with_memory_soft_limit(mut self, bytes: usize) -> Self {
        self.memory_soft_limit = bytes;
        self
    }

    /// Builder-style read thresholds (engine runs/second).
    pub fn with_read_thresholds(mut self, idle: f64, busy: f64) -> Self {
        assert!(idle <= busy, "idle threshold must not exceed busy");
        self.idle_reads_per_sec = idle;
        self.busy_reads_per_sec = busy;
        self
    }

    /// Builder-style thread ceiling.
    pub fn with_max_threads(mut self, threads: usize) -> Self {
        self.max_threads = threads.max(1);
        self
    }

    /// Builder-style memory-pressure budget.
    pub fn with_pressure_budget(mut self, budget: MergeBudget) -> Self {
        self.pressure_budget = budget;
        self
    }

    /// Builder-style pool queue-depth threshold (`usize::MAX` disables).
    pub fn with_deep_queue_depth(mut self, depth: usize) -> Self {
        self.deep_queue_depth = depth;
        self
    }
}

impl Default for GovernorConfig {
    fn default() -> Self {
        Self::from_policy(MergePolicy::default())
    }
}

// ---------------------------------------------------------------------------
// Signals and decisions
// ---------------------------------------------------------------------------

/// What one poll round of sampling concluded about the workload.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LoadSignals {
    /// Engine runs per second over the sampled window.
    pub reads_per_sec: f64,
    /// Engine runs in flight at sample time.
    pub reads_in_flight: u64,
    /// Tuples per second entering the delta over the window (delta growth
    /// corrected for tuples the window's merges moved out).
    pub write_tuples_per_sec: f64,
    /// [`Self::write_tuples_per_sec`] bucketed against the Section 4
    /// targets.
    pub write_load: WriteLoad,
    /// Equation 1 over the window: tuples absorbed per second of update
    /// *plus merge* time — the sustained rate the paper's update-rate
    /// figures report.
    pub sustained_updates_per_sec: f64,
    /// Total bytes of the governed source at sample time.
    pub memory_bytes: usize,
    /// Bytes on the write-optimized side (what merging reclaims).
    pub delta_bytes: usize,
    /// `memory_bytes` exceeded the configured soft limit.
    pub memory_pressure: bool,
    /// Queued-but-unclaimed tasks on the shared query pool at sample time
    /// ([`crate::pool::global_queue_depth`]): reads waiting for a worker.
    pub pool_queue_depth: usize,
}

/// Which row of the decision table produced a grant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GrantSignal {
    /// No signal fired: the policy's own grant.
    Baseline,
    /// Total bytes above the soft limit: budget shrunk to the pressure
    /// budget.
    MemoryPressure,
    /// Read rate above the busy threshold: `Naive` strategy (less memory
    /// traffic), half the threads.
    Contended,
    /// Query-pool queue depth above the configured threshold: scans are
    /// starved for workers, so the merge gives cores back (half the
    /// policy's threads, policy strategy).
    QueueDeep,
    /// Write rate at or above the paper's high target: all threads.
    WriteBurst,
    /// Read rate below the idle threshold with nothing in flight: all
    /// threads.
    ReadIdle,
    /// Crash recovery resumed a half-finished merge from its checkpoint:
    /// the policy's baseline grant, recorded so recovery-driven merges are
    /// visible among the regular rounds.
    Resume,
}

impl std::fmt::Display for GrantSignal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GrantSignal::Baseline => write!(f, "baseline"),
            GrantSignal::MemoryPressure => write!(f, "mem-pressure"),
            GrantSignal::Contended => write!(f, "contended"),
            GrantSignal::QueueDeep => write!(f, "queue-deep"),
            GrantSignal::WriteBurst => write!(f, "write-burst"),
            GrantSignal::ReadIdle => write!(f, "read-idle"),
            GrantSignal::Resume => write!(f, "resume"),
        }
    }
}

/// One recorded grant decision — what the ring in
/// [`ResourceGovernor::recent_grants`] holds and scheduler stats expose.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GrantRecord {
    /// Granted strategy.
    pub strategy: MergeStrategy,
    /// Granted threads.
    pub threads: usize,
    /// Granted budget in columns (`usize::MAX` = unbounded).
    pub budget_columns: usize,
    /// The decision-table row that fired.
    pub signal: GrantSignal,
    /// The worst selected source's delta fraction at decision time.
    pub delta_fraction: f64,
}

impl std::fmt::Display for GrantRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/t{}/K", self.strategy.algo(), self.threads)?;
        if self.budget_columns == usize::MAX {
            write!(f, "∞")?;
        } else {
            write!(f, "{}", self.budget_columns)?;
        }
        write!(f, " {} f={:.3}", self.signal, self.delta_fraction)
    }
}

/// What a scheduler tells the governor about its source(s) each round.
/// Build one with [`LoadView::of_source`] or by hand.
#[derive(Clone, Debug)]
pub struct LoadView {
    /// Per-source merge-trigger ratios (one entry for a single table, one
    /// per shard for a sharded table).
    pub fractions: Vec<f64>,
    /// Cumulative rows ever inserted per source (monotonic counters,
    /// aligned with [`Self::fractions`]). The governor differences
    /// successive polls into per-source sustained write rates and boosts
    /// hot sources' merge priority. Leave empty when the sources don't
    /// track insert counters — ranking then falls back to pure delta
    /// fractions.
    pub inserted: Vec<u64>,
    /// Total tuples awaiting a merge across the sources.
    pub delta_tuples: usize,
    /// Total byte accounting across the sources.
    pub memory: MemoryReport,
    /// Cap on how many sources this round may merge concurrently.
    pub max_concurrent: usize,
}

impl LoadView {
    /// Sample one [`MergeSource`](crate::scheduler::MergeSource) into a
    /// single-slot view.
    pub fn of_source<S: crate::scheduler::MergeSource + ?Sized>(source: &S) -> Self {
        Self {
            fractions: vec![source.delta_fraction()],
            inserted: vec![source.inserted_rows()],
            delta_tuples: source.delta_tuples(),
            memory: source.memory_report(),
            max_concurrent: 1,
        }
    }
}

/// One poll round's outcome: which sources to merge now (priority order)
/// and the grant they all run under.
#[derive(Clone, Debug)]
pub struct RoundPlan {
    /// Indices into the [`LoadView::fractions`] the round should merge,
    /// highest priority first, at most `max_concurrent` of them.
    pub selected: Vec<usize>,
    /// The adaptive grant for every merge of this round.
    pub grant: MergeGrant,
    /// Why the grant looks the way it does.
    pub signal: GrantSignal,
    /// The signals the decision was made from.
    pub signals: LoadSignals,
}

/// Sliding window state between polls.
struct GovState {
    last_poll: Option<Instant>,
    last_reads_finished: u64,
    last_delta_tuples: usize,
    /// Per-source cumulative insert counters at the last poll (for the
    /// per-shard write-rate ranking boost).
    last_inserted: Vec<u64>,
    /// Delta **rows** drained by merges since the last poll (accumulated
    /// by [`ResourceGovernor::record_outcome`] from
    /// [`MergeOutcome::rows_moved`] — same unit as
    /// [`LoadView::delta_tuples`]).
    window_merged_rows: u64,
    /// Wall time spent inside merges since the last poll.
    window_merge_wall: Duration,
    last_signals: LoadSignals,
}

/// Decisions kept in the trace ring.
const TRACE_CAP: usize = 64;

/// The feedback-driven grant source both schedulers poll. See the module
/// docs for the signal model and decision table.
pub struct ResourceGovernor {
    config: GovernorConfig,
    state: Mutex<GovState>,
    trace: Mutex<VecDeque<GrantRecord>>,
}

impl ResourceGovernor {
    /// A governor over `config`.
    pub fn new(config: GovernorConfig) -> Self {
        Self {
            config,
            state: Mutex::new(GovState {
                last_poll: None,
                last_reads_finished: read_load().finished,
                last_delta_tuples: 0,
                last_inserted: Vec::new(),
                window_merged_rows: 0,
                window_merge_wall: Duration::ZERO,
                last_signals: LoadSignals::default(),
            }),
            trace: Mutex::new(VecDeque::new()),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GovernorConfig {
        &self.config
    }

    /// The pure decision table: signals in, grant out. Exposed so tests
    /// (and tools) can probe decisions without constructing real load.
    pub fn decide(config: &GovernorConfig, signals: &LoadSignals) -> (MergeGrant, GrantSignal) {
        let base = config.policy.grant();
        if signals.memory_pressure {
            (
                base.budget(config.pressure_budget),
                GrantSignal::MemoryPressure,
            )
        } else if signals.reads_per_sec > config.busy_reads_per_sec {
            (
                MergeGrant {
                    strategy: MergeStrategy::Naive,
                    threads: (base.threads / 2).max(1),
                    budget: base.budget,
                },
                GrantSignal::Contended,
            )
        } else if signals.pool_queue_depth > config.deep_queue_depth {
            (
                MergeGrant {
                    threads: (base.threads / 2).max(1),
                    ..base
                },
                GrantSignal::QueueDeep,
            )
        } else if signals.write_load == WriteLoad::Heavy {
            (
                MergeGrant {
                    strategy: MergeStrategy::Parallel,
                    threads: config.max_threads.max(base.threads),
                    budget: base.budget,
                },
                GrantSignal::WriteBurst,
            )
        } else if signals.reads_per_sec < config.idle_reads_per_sec && signals.reads_in_flight == 0
        {
            (
                MergeGrant {
                    threads: config.max_threads.max(base.threads),
                    ..base
                },
                GrantSignal::ReadIdle,
            )
        } else {
            (base, GrantSignal::Baseline)
        }
    }

    /// The eagerness multiplier: ≥ 1, growing with write and memory
    /// pressure. Source `i` is eligible when
    /// `fraction_i × pressure > policy.delta_fraction`, so a pressured
    /// system merges *earlier* than the static trigger and an idle one
    /// merges exactly at it.
    fn pressure_factor(signals: &LoadSignals) -> f64 {
        let write = (signals.write_tuples_per_sec / rate::HIGH_TARGET_UPDATES_PER_SEC).min(4.0);
        let memory = if signals.memory_pressure { 1.0 } else { 0.0 };
        1.0 + write + memory
    }

    /// One poll round: fold the window's counters into [`LoadSignals`],
    /// rank the view's sources by `delta fraction × pressure`, and emit
    /// the round's adaptive grant. Records a [`GrantRecord`] in the trace
    /// ring whenever at least one source is selected.
    pub fn plan(&self, view: &LoadView) -> RoundPlan {
        let now = Instant::now();
        let reads = read_load();
        let (signals, source_rates) = {
            let mut st = self.state.lock();
            let elapsed = st
                .last_poll
                .map(|t| now.duration_since(t))
                .unwrap_or(Duration::ZERO);
            let secs = elapsed.as_secs_f64().max(1e-6);
            let finished_delta = reads.finished.saturating_sub(st.last_reads_finished);
            // Tuples that *entered* the deltas this window: net growth plus
            // whatever the window's merges moved out.
            let inserted = (view.delta_tuples as i64 - st.last_delta_tuples as i64
                + st.window_merged_rows as i64)
                .max(0) as u64;
            let (reads_per_sec, write_tuples_per_sec, sustained) = if st.last_poll.is_some() {
                (
                    finished_delta as f64 / secs,
                    inserted as f64 / secs,
                    rate::update_rate(inserted as usize, elapsed, st.window_merge_wall),
                )
            } else {
                // First poll: no window yet — report a quiet baseline.
                (0.0, 0.0, 0.0)
            };
            let signals = LoadSignals {
                reads_per_sec,
                reads_in_flight: reads.in_flight(),
                write_tuples_per_sec,
                write_load: rate::classify_update_rate(write_tuples_per_sec),
                sustained_updates_per_sec: if sustained.is_finite() {
                    sustained
                } else {
                    0.0
                },
                memory_bytes: view.memory.total(),
                delta_bytes: view.memory.delta_total(),
                memory_pressure: view.memory.total() > self.config.memory_soft_limit,
                pool_queue_depth: crate::pool::global_queue_depth(),
            };
            // Per-source sustained write rates over the window, from the
            // cumulative insert counters (when the sources provide them
            // and the slot count is stable across polls).
            let source_rates: Vec<f64> =
                if st.last_poll.is_some() && view.inserted.len() == st.last_inserted.len() {
                    view.inserted
                        .iter()
                        .zip(&st.last_inserted)
                        .map(|(&cur, &prev)| cur.saturating_sub(prev) as f64 / secs)
                        .collect()
                } else {
                    vec![0.0; view.inserted.len()]
                };
            st.last_poll = Some(now);
            st.last_reads_finished = reads.finished;
            st.last_delta_tuples = view.delta_tuples;
            st.last_inserted = view.inserted.clone();
            st.window_merged_rows = 0;
            st.window_merge_wall = Duration::ZERO;
            st.last_signals = signals;
            (signals, source_rates)
        };

        let (mut grant, signal) = Self::decide(&self.config, &signals);
        let pressure = Self::pressure_factor(&signals);
        // Eligibility is still the (pressure-scaled) fraction trigger;
        // *priority* among the eligible is the fraction boosted by each
        // source's own sustained write rate — a shard absorbing a write
        // hot-spot merges before a colder shard with the same backlog,
        // because its backlog will be worse by the time a round comes
        // back to it. Zero or absent rates leave the pure-fraction order.
        let rate_boost = |i: usize| {
            let r = source_rates.get(i).copied().unwrap_or(0.0);
            1.0 + (r / rate::HIGH_TARGET_UPDATES_PER_SEC).min(4.0)
        };
        let mut ranked: Vec<(usize, f64, f64)> = view
            .fractions
            .iter()
            .enumerate()
            .filter(|(_, &f)| f * pressure > self.config.policy.delta_fraction)
            .map(|(i, &f)| (i, f, f * rate_boost(i)))
            .collect();
        ranked.sort_by(|a, b| b.2.total_cmp(&a.2));
        ranked.truncate(view.max_concurrent.max(1));
        let selected: Vec<usize> = ranked.iter().map(|&(i, _, _)| i).collect();

        // The decision table sizes threads for ONE merge; a sharded round
        // runs the same grant on every selected shard concurrently, so a
        // `max_threads` raise would oversubscribe the machine K-fold.
        // Divide the raise across the selected shards — but never below
        // the policy's own per-shard grant, which is the static
        // schedulers' long-standing concurrency level.
        if selected.len() > 1 {
            let per_shard = (self.config.max_threads / selected.len()).max(1);
            grant.threads = grant.threads.min(per_shard.max(self.config.policy.threads));
        }

        if let Some(&(_, worst, _)) = ranked.first() {
            let mut trace = self.trace.lock();
            if trace.len() == TRACE_CAP {
                trace.pop_front();
            }
            trace.push_back(GrantRecord {
                strategy: grant.strategy,
                threads: grant.threads,
                budget_columns: grant.budget.max_columns(),
                signal,
                delta_fraction: worst,
            });
        }

        RoundPlan {
            selected,
            grant,
            signal,
            signals,
        }
    }

    /// The grant a crash-recovery merge resume runs under — the policy's
    /// own baseline grant, recorded in the trace with
    /// [`GrantSignal::Resume`] so operators can see recovery-driven merges
    /// among the regular rounds. The choice is safe by construction: every
    /// strategy and thread count produces byte-identical merged partitions,
    /// so the resumed merge's result does not depend on the grant.
    pub fn resume_grant(&self, delta_fraction: f64) -> MergeGrant {
        let grant = self.config.policy.grant();
        let mut trace = self.trace.lock();
        if trace.len() == TRACE_CAP {
            trace.pop_front();
        }
        trace.push_back(GrantRecord {
            strategy: grant.strategy,
            threads: grant.threads,
            budget_columns: grant.budget.max_columns(),
            signal: GrantSignal::Resume,
            delta_fraction,
        });
        grant
    }

    /// Report a completed merge back into the current window, so the next
    /// [`Self::plan`] can correct delta growth for merged-out tuples and
    /// compute the Equation 1 sustained rate.
    pub fn record_outcome(&self, out: &MergeOutcome) {
        let mut st = self.state.lock();
        st.window_merged_rows += out.rows_moved;
        st.window_merge_wall += out.wall;
    }

    /// The signals of the most recent [`Self::plan`] round.
    pub fn last_signals(&self) -> LoadSignals {
        self.state.lock().last_signals
    }

    /// The bounded trace of recent grant decisions, oldest first (at most
    /// 64 entries; rounds that selected no source record nothing).
    pub fn recent_grants(&self) -> Vec<GrantRecord> {
        self.trace.lock().iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> GovernorConfig {
        GovernorConfig::from_policy(MergePolicy {
            delta_fraction: 0.05,
            threads: 4,
            ..MergePolicy::default()
        })
        .with_max_threads(8)
        .with_read_thresholds(1.0, 100.0)
    }

    #[test]
    fn decision_table_rows_fire_in_priority_order() {
        let cfg = config().with_memory_soft_limit(1 << 20);
        let mut s = LoadSignals {
            memory_pressure: true,
            reads_per_sec: 1_000.0, // also contended…
            write_load: WriteLoad::Heavy,
            ..LoadSignals::default()
        };
        // Memory pressure dominates everything.
        let (g, sig) = ResourceGovernor::decide(&cfg, &s);
        assert_eq!(sig, GrantSignal::MemoryPressure);
        assert_eq!(g.budget, cfg.pressure_budget);
        assert_eq!(g.threads, 4, "memory pressure keeps the policy threads");

        // Contention beats a write burst: Naive, half the threads.
        s.memory_pressure = false;
        let (g, sig) = ResourceGovernor::decide(&cfg, &s);
        assert_eq!(sig, GrantSignal::Contended);
        assert_eq!(g.strategy, MergeStrategy::Naive);
        assert_eq!(g.threads, 2);

        // Write burst takes the machine.
        s.reads_per_sec = 50.0;
        let (g, sig) = ResourceGovernor::decide(&cfg, &s);
        assert_eq!(sig, GrantSignal::WriteBurst);
        assert_eq!(g.strategy, MergeStrategy::Parallel);
        assert_eq!(g.threads, 8);

        // Quiet reads, light writes, nothing in flight: idle raise.
        s.write_load = WriteLoad::Light;
        s.reads_per_sec = 0.0;
        s.reads_in_flight = 0;
        let (g, sig) = ResourceGovernor::decide(&cfg, &s);
        assert_eq!(sig, GrantSignal::ReadIdle);
        assert_eq!(g.threads, 8);
        assert_eq!(g.strategy, cfg.policy.strategy);

        // Moderate reads: baseline.
        s.reads_per_sec = 10.0;
        let (g, sig) = ResourceGovernor::decide(&cfg, &s);
        assert_eq!(sig, GrantSignal::Baseline);
        assert_eq!(g, cfg.policy.grant());

        // In-flight queries suppress the idle raise even at zero rate.
        s.reads_per_sec = 0.0;
        s.reads_in_flight = 3;
        let (_, sig) = ResourceGovernor::decide(&cfg, &s);
        assert_eq!(sig, GrantSignal::Baseline);
    }

    #[test]
    fn deep_read_queues_steer_the_grant_toward_fewer_merge_threads() {
        let cfg = config().with_deep_queue_depth(4);
        // Sustained deep queue: morsel tasks waiting for workers.
        let s = LoadSignals {
            pool_queue_depth: 10,
            write_load: WriteLoad::Heavy, // would otherwise take the machine
            ..LoadSignals::default()
        };
        let (g, sig) = ResourceGovernor::decide(&cfg, &s);
        assert_eq!(sig, GrantSignal::QueueDeep);
        assert_eq!(
            g.threads, 2,
            "half the policy's 4 threads — cores go back to the scans"
        );
        assert_eq!(
            g.strategy, cfg.policy.strategy,
            "queue depth is a core signal, not a bandwidth signal"
        );
        assert!(
            g.threads
                < ResourceGovernor::decide(&cfg, &LoadSignals::default())
                    .0
                    .threads
                || cfg.policy.threads == 1,
            "strictly fewer threads than the baseline grant"
        );

        // Contention outranks queue depth; a shallow queue never fires.
        let busy = LoadSignals {
            reads_per_sec: 1_000.0,
            ..s
        };
        assert_eq!(
            ResourceGovernor::decide(&cfg, &busy).1,
            GrantSignal::Contended
        );
        let shallow = LoadSignals {
            pool_queue_depth: 4, // at, not above, the threshold
            reads_per_sec: 10.0,
            ..LoadSignals::default()
        };
        assert_eq!(
            ResourceGovernor::decide(&cfg, &shallow).1,
            GrantSignal::Baseline
        );
        // `usize::MAX` disables the signal entirely.
        let disabled = config().with_deep_queue_depth(usize::MAX);
        let (_, sig) = ResourceGovernor::decide(&disabled, &s);
        assert_eq!(sig, GrantSignal::WriteBurst);
    }

    #[test]
    fn plan_detects_memory_pressure_and_shrinks_the_budget() {
        let gov = ResourceGovernor::new(config().with_memory_soft_limit(1_000));
        let view = LoadView {
            fractions: vec![0.5],
            inserted: vec![],
            delta_tuples: 100,
            memory: MemoryReport {
                delta_values: 4_000,
                ..MemoryReport::default()
            },
            max_concurrent: 1,
        };
        let plan = gov.plan(&view);
        assert_eq!(plan.signal, GrantSignal::MemoryPressure);
        assert_eq!(plan.grant.budget, gov.config().pressure_budget);
        assert_eq!(plan.selected, vec![0]);
        assert!(plan.signals.memory_pressure);
        assert_eq!(plan.signals.memory_bytes, 4_000);
        let trace = gov.recent_grants();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].signal, GrantSignal::MemoryPressure);
        assert_eq!(
            trace[0].budget_columns,
            gov.config().pressure_budget.max_columns()
        );
    }

    #[test]
    fn plan_ranks_shards_and_respects_the_trigger() {
        let gov = ResourceGovernor::new(config());
        let view = LoadView {
            fractions: vec![0.02, 0.30, 0.10, 0.0],
            inserted: vec![],
            delta_tuples: 0,
            memory: MemoryReport::default(),
            max_concurrent: 2,
        };
        let plan = gov.plan(&view);
        // 0.02 and 0.0 are below the 0.05 trigger (pressure factor is 1 on
        // a quiet first window); the two eligible shards rank worst-first.
        assert_eq!(plan.selected, vec![1, 2]);
        // max_concurrent truncates.
        let view = LoadView {
            fractions: vec![0.30, 0.20, 0.10],
            max_concurrent: 1,
            ..view
        };
        assert_eq!(gov.plan(&view).selected, vec![0]);
        // Nothing eligible → nothing selected, nothing traced.
        let before = gov.recent_grants().len();
        let view = LoadView {
            fractions: vec![0.01, 0.0],
            max_concurrent: 2,
            ..view
        };
        assert!(gov.plan(&view).selected.is_empty());
        assert_eq!(gov.recent_grants().len(), before);
    }

    #[test]
    fn multi_shard_rounds_divide_the_thread_raise() {
        // A quiet window reads as ReadIdle → decide() raises to
        // max_threads (8). With 4 shards selected concurrently, the round
        // grant must divide that raise (8 / 4 = 2, floored at the policy's
        // own per-shard threads) instead of granting 4 × 8 threads.
        let gov = ResourceGovernor::new(
            GovernorConfig::from_policy(MergePolicy {
                delta_fraction: 0.05,
                threads: 2,
                ..MergePolicy::default()
            })
            .with_max_threads(8)
            .with_read_thresholds(1.0, 100.0),
        );
        let plan = gov.plan(&LoadView {
            fractions: vec![0.5, 0.4, 0.3, 0.2],
            inserted: vec![],
            delta_tuples: 0,
            memory: MemoryReport::default(),
            max_concurrent: 4,
        });
        assert_eq!(plan.signal, GrantSignal::ReadIdle);
        assert_eq!(plan.selected.len(), 4);
        assert_eq!(
            plan.grant.threads, 2,
            "8-thread raise ÷ 4 shards, floored at policy threads"
        );
        // A single-shard round keeps the full raise.
        let plan = gov.plan(&LoadView {
            fractions: vec![0.5],
            inserted: vec![],
            delta_tuples: 0,
            memory: MemoryReport::default(),
            max_concurrent: 4,
        });
        assert_eq!(plan.grant.threads, 8, "one merge may take the machine");
    }

    #[test]
    fn per_shard_write_rates_boost_merge_priority() {
        // Two eligible shards; the one with the *lower* fraction absorbs a
        // write hot-spot. Pure-fraction ranking would merge shard 1 first;
        // the rate boost must put the hot shard 0 first.
        let gov = ResourceGovernor::new(config());
        let mem = MemoryReport::default();
        // Window 1: establish per-shard counters.
        let _ = gov.plan(&LoadView {
            fractions: vec![0.10, 0.12],
            inserted: vec![0, 0],
            delta_tuples: 0,
            memory: mem,
            max_concurrent: 1,
        });
        std::thread::sleep(Duration::from_millis(20));
        // Window 2: shard 0 inserted a flood, shard 1 nothing.
        let plan = gov.plan(&LoadView {
            fractions: vec![0.10, 0.12],
            inserted: vec![10_000_000, 0],
            delta_tuples: 0,
            memory: mem,
            max_concurrent: 1,
        });
        assert_eq!(
            plan.selected,
            vec![0],
            "the write-hot shard outranks the slightly larger backlog"
        );
        // With no counters at all, ranking stays pure-fraction.
        let plan = gov.plan(&LoadView {
            fractions: vec![0.10, 0.12],
            inserted: vec![],
            delta_tuples: 0,
            memory: mem,
            max_concurrent: 1,
        });
        assert_eq!(plan.selected, vec![1]);
    }

    #[test]
    fn write_pressure_makes_the_trigger_more_eager() {
        // fraction 0.04 < trigger 0.05, but a heavy write window multiplies
        // it past the trigger.
        let signals = LoadSignals {
            write_tuples_per_sec: rate::HIGH_TARGET_UPDATES_PER_SEC,
            ..LoadSignals::default()
        };
        assert!(ResourceGovernor::pressure_factor(&signals) >= 2.0);
        let quiet = LoadSignals::default();
        assert_eq!(ResourceGovernor::pressure_factor(&quiet), 1.0);

        let gov = ResourceGovernor::new(config());
        let mem = MemoryReport::default();
        // Window 1: establish a baseline with an empty delta.
        let _ = gov.plan(&LoadView {
            fractions: vec![0.04],
            inserted: vec![],
            delta_tuples: 0,
            memory: mem,
            max_concurrent: 1,
        });
        std::thread::sleep(Duration::from_millis(20));
        // Window 2: the delta grew by far more than HIGH_TARGET × window.
        let plan = gov.plan(&LoadView {
            fractions: vec![0.04],
            inserted: vec![],
            delta_tuples: 1_000_000,
            memory: mem,
            max_concurrent: 1,
        });
        assert!(
            plan.signals.write_tuples_per_sec > rate::HIGH_TARGET_UPDATES_PER_SEC,
            "delta growth rate {}",
            plan.signals.write_tuples_per_sec
        );
        assert_eq!(plan.signals.write_load, WriteLoad::Heavy);
        assert_eq!(
            plan.selected,
            vec![0],
            "sub-trigger fraction becomes eligible under write pressure"
        );
    }

    #[test]
    fn merged_tuples_are_credited_back_to_the_window() {
        let gov = ResourceGovernor::new(config());
        let mem = MemoryReport::default();
        let _ = gov.plan(&LoadView {
            fractions: vec![0.0],
            inserted: vec![],
            delta_tuples: 1_000,
            memory: mem,
            max_concurrent: 1,
        });
        // A merge drained 1_000 delta rows (a 3-column table would report
        // tuples_moved = 3_000 — the governor must credit back *rows*, the
        // unit delta lengths are measured in); 500 new rows arrived (delta
        // shows 500): the window's insert count must be 500, not -500, and
        // not inflated by the column count.
        gov.record_outcome(&MergeOutcome {
            tuples_moved: 3_000,
            rows_moved: 1_000,
            wall: Duration::from_millis(5),
            stages: Default::default(),
        });
        std::thread::sleep(Duration::from_millis(10));
        let plan = gov.plan(&LoadView {
            fractions: vec![0.0],
            inserted: vec![],
            delta_tuples: 500,
            memory: mem,
            max_concurrent: 1,
        });
        let secs_lo = 0.005; // at least the sleep, minus timer slack
        assert!(
            plan.signals.write_tuples_per_sec > 0.0
                && plan.signals.write_tuples_per_sec < 500.0 / secs_lo,
            "rate {} must reflect ~500 inserts (not a negative window)",
            plan.signals.write_tuples_per_sec
        );
        assert!(plan.signals.sustained_updates_per_sec > 0.0);
    }

    #[test]
    fn trace_ring_is_bounded() {
        let gov = ResourceGovernor::new(config());
        let view = LoadView {
            fractions: vec![1.0],
            inserted: vec![],
            delta_tuples: 0,
            memory: MemoryReport::default(),
            max_concurrent: 1,
        };
        for _ in 0..(TRACE_CAP + 20) {
            let _ = gov.plan(&view);
        }
        let trace = gov.recent_grants();
        assert_eq!(trace.len(), TRACE_CAP);
        // Display is stable enough to print in harnesses.
        let line = trace[0].to_string();
        assert!(line.contains("f=1.000"), "{line}");
    }

    #[test]
    fn read_guard_counts_start_and_finish() {
        let before = read_load();
        let g = begin_read();
        let during = read_load();
        assert!(during.started > before.started);
        drop(g);
        let after = read_load();
        assert!(after.finished > before.finished);
        assert!(after.finished <= after.started);
    }
}

//! Property tests for the epoch-published write path: concurrent batched
//! writers against lock-free snapshot readers.
//!
//! The watermark contract under test: a reader's snapshot exposes exactly
//! the rows below the published watermark at pin time — every multi-row
//! batch appears **atomically** (all rows or none), batch rows are
//! contiguous and in insertion order, and no snapshot ever exposes a slot
//! a writer is still filling. Because the tail publishes strictly in
//! reservation order, an observed row count is always a sum of whole
//! batches, and row contents below it are fully written.

use hyrise_core::OnlineTable;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// Column-1 payload of the `k`-th row of the batch tagged `tag`.
fn payload(tag: u64, k: u64) -> u64 {
    tag.wrapping_mul(1_000_003).wrapping_add(k)
}

/// One writer's batches: each is `batch` rows of `[tag, payload(tag, k)]`.
fn writer_batches(writer: u64, batches: u64, batch: u64) -> Vec<Vec<Vec<u64>>> {
    (0..batches)
        .map(|b| {
            let tag = writer * batches + b + 1;
            (0..batch).map(|k| vec![tag, payload(tag, k)]).collect()
        })
        .collect()
}

/// Check one snapshot against the watermark contract: the visible row
/// count is a whole number of batches, and every `batch`-aligned block
/// holds one batch's rows, in order, fully written.
fn check_snapshot(snap: &hyrise_core::TableSnapshot<u64>, batch: usize) {
    let n = snap.row_count();
    assert_eq!(
        n % batch,
        0,
        "visible rows must be whole batches (saw {n}, batch size {batch})"
    );
    for block in 0..n / batch {
        let tag = snap.col(0).get(block * batch);
        assert_ne!(tag, 0, "a visible row is never an unwritten slot");
        for k in 0..batch {
            let row = block * batch + k;
            assert_eq!(snap.col(0).get(row), tag, "batch rows are contiguous");
            assert_eq!(
                snap.col(1).get(row),
                payload(tag, k as u64),
                "batch rows appear in insertion order, fully written"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Writers race batched inserts while readers snapshot continuously:
    /// no reader may ever observe a torn batch or a half-written row.
    #[test]
    fn readers_never_observe_rows_above_the_published_watermark(
        writers in 1u64..4,
        batches in 4u64..24,
        batch in 1u64..8,
        merge_mid_run in any::<bool>(),
    ) {
        let table = OnlineTable::<u64>::new(2);
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            for w in 0..writers {
                let table = &table;
                let work = writer_batches(w, batches, batch);
                s.spawn(move || {
                    for rows in &work {
                        let range = table.insert_rows(rows).unwrap();
                        assert_eq!(range.len(), rows.len());
                    }
                });
            }
            if merge_mid_run {
                let table = &table;
                let done = &done;
                s.spawn(move || {
                    while !done.load(Ordering::Relaxed) {
                        let _ = table.merge(1, None);
                        std::thread::yield_now();
                    }
                });
            }
            // Reader on this thread: watermark-aligned, monotone snapshots.
            let mut last = 0usize;
            let total = (writers * batches * batch) as usize;
            loop {
                let snap = table.snapshot();
                check_snapshot(&snap, batch as usize);
                assert!(
                    snap.row_count() >= last,
                    "visible prefix only grows ({last} -> {})",
                    snap.row_count()
                );
                last = snap.row_count();
                if last == total {
                    break;
                }
            }
            done.store(true, Ordering::Relaxed);
        });

        // Quiesced: the final snapshot holds every batch exactly once.
        let snap = table.snapshot();
        prop_assert_eq!(snap.row_count(), (writers * batches * batch) as usize);
        check_snapshot(&snap, batch as usize);
        let mut seen = std::collections::HashSet::new();
        for block in 0..(writers * batches) as usize {
            prop_assert!(
                seen.insert(snap.col(0).get(block * batch as usize)),
                "each batch lands exactly once"
            );
        }
    }
}

//! End-to-end crash-durability tests through the public API only: build a
//! durable table, mutate it, drop it cold (no shutdown hook exists — a
//! drop *is* a `kill -9` as far as the on-disk state is concerned, since
//! every record reaches the file before its rows publish), and
//! [`recover`] must rebuild the exact state. File-level fault injection
//! (truncated tails, flipped bytes) runs against the real segment files.

use hyrise_core::shard::ShardedTable;
use hyrise_core::{recover, recover_sharded, Durability, Error, OnlineTable};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

const COLS: usize = 3;

/// A scratch directory that cleans up after itself.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "hyrise-wal-recovery-{}-{tag}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn durable(dir: &Path, fsync: bool) -> OnlineTable<u64> {
    OnlineTable::builder()
        .columns(COLS)
        .durability(Durability::Wal {
            dir: dir.to_path_buf(),
            fsync,
        })
        .build()
        .unwrap()
}

fn row(seed: u64) -> Vec<u64> {
    (0..COLS as u64)
        .map(|c| seed.wrapping_mul(0x9E37_79B9).wrapping_add(c) % 1_000_003)
        .collect()
}

/// Byte-identity: dictionaries, packed code words, per-row values and
/// validity all agree.
fn assert_state_identical(a: &OnlineTable<u64>, b: &OnlineTable<u64>) {
    assert_eq!(a.row_count(), b.row_count(), "row counts differ");
    assert_eq!(a.main_len(), b.main_len(), "main lengths differ");
    assert_eq!(a.delta_len(), b.delta_len(), "delta lengths differ");
    let (sa, sb) = (a.snapshot(), b.snapshot());
    for c in 0..COLS {
        assert_eq!(
            sa.col(c).main().dictionary().values(),
            sb.col(c).main().dictionary().values(),
            "column {c}: dictionaries differ"
        );
        assert_eq!(
            sa.col(c).main().packed_codes().words(),
            sb.col(c).main().packed_codes().words(),
            "column {c}: packed code words differ"
        );
    }
    for r in 0..a.row_count() {
        assert_eq!(a.is_valid(r), b.is_valid(r), "validity of row {r} differs");
        for c in 0..COLS {
            assert_eq!(a.get(c, r), b.get(c, r), "value at ({c}, {r}) differs");
        }
    }
}

#[test]
fn recover_replays_inserts_deletes_and_merges() {
    let scratch = Scratch::new("roundtrip");
    let model = OnlineTable::<u64>::new(COLS);
    {
        let t = durable(scratch.path(), false);
        let batch: Vec<Vec<u64>> = (0..400u64).map(row).collect();
        t.insert_rows(&batch).unwrap();
        model.insert_rows(&batch).unwrap();
        for r in [3usize, 77, 200] {
            t.try_delete_row(r).unwrap();
            model.try_delete_row(r).unwrap();
        }
        t.merge(1, None).unwrap();
        model.merge(1, None).unwrap();
        let tail: Vec<Vec<u64>> = (400..523u64).map(row).collect();
        t.insert_rows(&tail).unwrap();
        model.insert_rows(&tail).unwrap();
        t.try_delete_row(450).unwrap();
        model.try_delete_row(450).unwrap();
        // dropped cold: no flush hook runs
    }
    let back: OnlineTable<u64> = recover(scratch.path()).unwrap();
    assert!(back.is_durable(), "recovered table keeps logging");
    assert_state_identical(&back, &model);
}

#[test]
fn recovered_table_keeps_accepting_writes_and_recovering() {
    let scratch = Scratch::new("relog");
    {
        let t = durable(scratch.path(), false);
        t.insert_rows(&(0..100u64).map(row).collect::<Vec<_>>())
            .unwrap();
    }
    let model = OnlineTable::<u64>::new(COLS);
    model
        .insert_rows(&(0..100u64).map(row).collect::<Vec<_>>())
        .unwrap();
    {
        // First recovery continues the live segment: new writes must land
        // after the replayed ones and survive a second crash.
        let t: OnlineTable<u64> = recover(scratch.path()).unwrap();
        let more: Vec<Vec<u64>> = (100..180u64).map(row).collect();
        t.insert_rows(&more).unwrap();
        model.insert_rows(&more).unwrap();
        t.merge(1, None).unwrap();
        model.merge(1, None).unwrap();
    }
    let back: OnlineTable<u64> = recover(scratch.path()).unwrap();
    assert_state_identical(&back, &model);
}

#[test]
fn fsync_mode_round_trips_too() {
    let scratch = Scratch::new("fsync");
    let model = OnlineTable::<u64>::new(COLS);
    {
        let t = durable(scratch.path(), true);
        let batch: Vec<Vec<u64>> = (0..64u64).map(row).collect();
        t.insert_rows(&batch).unwrap();
        model.insert_rows(&batch).unwrap();
        t.try_delete_row(5).unwrap();
        model.try_delete_row(5).unwrap();
    }
    let back: OnlineTable<u64> = recover(scratch.path()).unwrap();
    assert_state_identical(&back, &model);
}

/// The newest (live) segment file in the directory.
fn live_segment(dir: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".wal"))
        })
        .collect();
    segs.sort();
    segs.pop().expect("a live segment exists")
}

#[test]
fn torn_final_record_recovers_the_clean_prefix() {
    let scratch = Scratch::new("torn");
    {
        let t = durable(scratch.path(), false);
        for chunk in (0..10u64).collect::<Vec<_>>().chunks(2) {
            let batch: Vec<Vec<u64>> = chunk.iter().map(|&i| row(i)).collect();
            t.insert_rows(&batch).unwrap();
        }
    }
    // Shear the last record mid-payload: a crash inside a single append.
    let seg = live_segment(scratch.path());
    let len = std::fs::metadata(&seg).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
    f.set_len(len - 7).unwrap();
    drop(f);

    let back: OnlineTable<u64> = recover(scratch.path()).unwrap();
    // The final 2-row batch is gone; every batch before it survives whole.
    assert_eq!(back.row_count(), 8, "clean prefix only");
    for r in 0..8 {
        assert_eq!(back.get(0, r), row(r as u64)[0]);
    }
    // And the recovered WAL reuses the truncated position: new writes
    // replace the torn bytes and survive the next recovery.
    back.insert_rows(&[row(999)]).unwrap();
    drop(back);
    let again: OnlineTable<u64> = recover(scratch.path()).unwrap();
    assert_eq!(again.row_count(), 9);
    assert_eq!(again.get(1, 8), row(999)[1]);
}

#[test]
fn corrupt_record_mid_log_is_a_typed_error() {
    let scratch = Scratch::new("corrupt");
    {
        let t = durable(scratch.path(), false);
        t.insert_rows(&(0..50u64).map(row).collect::<Vec<_>>())
            .unwrap();
        t.insert_rows(&(50..100u64).map(row).collect::<Vec<_>>())
            .unwrap();
    }
    let seg = live_segment(scratch.path());
    // Flip one byte in the middle of the first record's payload: the
    // frame is complete (not torn), so the CRC must catch it.
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes[24] ^= 0xFF;
    std::fs::write(&seg, &bytes).unwrap();

    let err = recover::<u64>(scratch.path()).map(|_| ()).unwrap_err();
    assert!(
        matches!(err, Error::Corrupt { .. }),
        "CRC mismatch must surface as Error::Corrupt, got: {err}"
    );
}

#[test]
fn recovering_a_missing_table_is_a_typed_error() {
    let scratch = Scratch::new("missing");
    let err = recover::<u64>(scratch.path()).map(|_| ()).unwrap_err();
    assert!(
        matches!(err, Error::Io { .. }),
        "no manifest on disk, got: {err}"
    );
}

#[test]
fn sharded_table_recovers_per_shard() {
    let scratch = Scratch::new("sharded");
    let model = ShardedTable::<u64>::builder()
        .shards(3)
        .columns(COLS)
        .build()
        .unwrap();
    {
        let t = ShardedTable::<u64>::builder()
            .shards(3)
            .columns(COLS)
            .durability(Durability::Wal {
                dir: scratch.path().to_path_buf(),
                fsync: false,
            })
            .build()
            .unwrap();
        let rows: Vec<Vec<u64>> = (0..600u64).map(row).collect();
        let ids = t.insert_rows(&rows).unwrap();
        let model_ids = model.insert_rows(&rows).unwrap();
        assert_eq!(ids, model_ids, "routing is deterministic");
        t.merge_all(1).unwrap();
        model.merge_all(1).unwrap();
        let more: Vec<Vec<u64>> = (600..700u64).map(row).collect();
        t.insert_rows(&more).unwrap();
        model.insert_rows(&more).unwrap();
    }
    let back: ShardedTable<u64> = recover_sharded(scratch.path()).unwrap();
    assert_eq!(back.num_shards(), 3);
    for (a, b) in back.shards().iter().zip(model.shards()) {
        assert_state_identical(a, b);
    }
}

// --- Recovery oracle: arbitrary op interleavings, crash at an arbitrary
// boundary, replay must be byte-identical. ---

/// One logical operation, decoded from raw proptest integers.
#[derive(Debug, Clone, Copy)]
enum Op {
    InsertBatch { seed: u64, n: usize },
    Delete { target: u64 },
    Merge,
}

fn decode(raw: &[(u8, u64)]) -> Vec<Op> {
    raw.iter()
        .map(|&(kind, x)| match kind % 8 {
            0..=4 => Op::InsertBatch {
                seed: x,
                n: (x % 9 + 1) as usize,
            },
            5..=6 => Op::Delete { target: x },
            _ => Op::Merge,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The oracle: every operation that returned before the crash is on
    /// disk (buffered writes survive process death), so recovery must
    /// reproduce the model table exactly — dictionaries, packed words,
    /// row values, validity — no matter where the op stream stopped.
    #[test]
    fn recovery_is_byte_identical_at_any_op_boundary(
        raw in prop::collection::vec((any::<u8>(), any::<u64>()), 1..40),
        cut in any::<u16>(),
    ) {
        let ops = decode(&raw);
        let cut = cut as usize % (ops.len() + 1);
        let scratch = Scratch::new("oracle");
        let model = OnlineTable::<u64>::new(COLS);
        {
            let t = durable(scratch.path(), false);
            for op in &ops[..cut] {
                match *op {
                    Op::InsertBatch { seed, n } => {
                        let batch: Vec<Vec<u64>> =
                            (0..n as u64).map(|k| row(seed.wrapping_add(k))).collect();
                        t.insert_rows(&batch).unwrap();
                        model.insert_rows(&batch).unwrap();
                    }
                    Op::Delete { target } => {
                        let rows = t.row_count();
                        if rows > 0 {
                            let r = (target as usize) % rows;
                            t.try_delete_row(r).unwrap();
                            model.try_delete_row(r).unwrap();
                        }
                    }
                    Op::Merge => {
                        if t.delta_len() > 0 {
                            t.merge(1, None).unwrap();
                            model.merge(1, None).unwrap();
                        }
                    }
                }
            }
        }
        let back: OnlineTable<u64> = recover(scratch.path()).unwrap();
        assert_state_identical(&back, &model);
    }
}

//! Property tests: the three merge implementations must agree with each
//! other and with an oracle built from plain sorted vectors, for arbitrary
//! main/delta contents and thread counts.

use hyrise_core::{
    merge_column_naive, merge_column_optimized, merge_dictionaries,
    parallel::{compress_delta_parallel, merge_column_parallel, merge_dictionaries_parallel},
    partition::corank,
};
use hyrise_storage::{DeltaPartition, MainPartition};
use proptest::prelude::*;

fn delta_from(values: &[u64]) -> DeltaPartition<u64> {
    let mut d = DeltaPartition::new();
    for &v in values {
        d.insert(v);
    }
    d
}

/// Oracle: the merged column must contain main values then delta values, and
/// its dictionary must be the sorted union.
fn oracle(main_vals: &[u64], delta_vals: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let mut dict: Vec<u64> = main_vals.iter().chain(delta_vals).copied().collect();
    dict.sort_unstable();
    dict.dedup();
    let concat: Vec<u64> = main_vals.iter().chain(delta_vals).copied().collect();
    (dict, concat)
}

fn sorted_unique(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v.dedup();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_three_algorithms_agree_with_oracle(
        main_vals in prop::collection::vec(0u64..500, 0..800),
        delta_vals in prop::collection::vec(0u64..700, 0..400),
        threads in 1usize..9,
    ) {
        let main = MainPartition::from_values(&main_vals);
        let delta = delta_from(&delta_vals);
        let (dict, concat) = oracle(&main_vals, &delta_vals);

        let outs = [
            merge_column_naive(&main, &delta, threads).main,
            merge_column_optimized(&main, &delta).main,
            merge_column_parallel(&main, &delta, threads).main,
        ];
        for (k, out) in outs.iter().enumerate() {
            prop_assert_eq!(out.dictionary().values(), &dict[..], "algo {} dictionary", k);
            let got: Vec<u64> = (0..out.len()).map(|i| out.get(i)).collect();
            prop_assert_eq!(&got, &concat, "algo {} contents", k);
            prop_assert_eq!(out.code_bits(), hyrise_bitpack::bits_for(dict.len()), "algo {} width", k);
        }
    }

    #[test]
    fn parallel_dict_merge_equals_serial(
        a in prop::collection::vec(0u64..10_000, 0..6_000),
        b in prop::collection::vec(0u64..10_000, 0..6_000),
        threads in 1usize..17,
    ) {
        let a = sorted_unique(a);
        let b = sorted_unique(b);
        let serial = merge_dictionaries(&a, &b);
        let par = merge_dictionaries_parallel(&a, &b, threads);
        prop_assert_eq!(par, serial);
    }

    #[test]
    fn aux_tables_translate_correctly(
        a in prop::collection::vec(0u64..2_000, 1..2_000),
        b in prop::collection::vec(0u64..2_000, 1..2_000),
    ) {
        let a = sorted_unique(a);
        let b = sorted_unique(b);
        let dm = merge_dictionaries(&a, &b);
        // X translates every old code to the position of the same value.
        for (i, v) in a.iter().enumerate() {
            prop_assert_eq!(dm.merged[dm.x_m[i] as usize], *v);
        }
        for (j, v) in b.iter().enumerate() {
            prop_assert_eq!(dm.merged[dm.x_d[j] as usize], *v);
        }
        // Merged dictionary is the sorted union.
        let mut want: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        want.sort_unstable();
        want.dedup();
        prop_assert_eq!(dm.merged, want);
    }

    #[test]
    fn corank_is_always_a_valid_split(
        a in prop::collection::vec(0u64..300, 0..400),
        b in prop::collection::vec(0u64..300, 0..400),
        kfrac in 0.0f64..=1.0,
    ) {
        let a = sorted_unique(a);
        let b = sorted_unique(b);
        let k = ((a.len() + b.len()) as f64 * kfrac) as usize;
        let (i, j) = corank(k, &a, &b);
        prop_assert_eq!(i + j, k);
        if i > 0 && j < b.len() {
            prop_assert!(a[i - 1] <= b[j]);
        }
        if j > 0 && i < a.len() {
            prop_assert!(b[j - 1] <= a[i]);
        }
    }

    #[test]
    fn parallel_compress_equals_serial(
        values in prop::collection::vec(0u64..800, 0..8_000),
        threads in 1usize..9,
    ) {
        let delta = delta_from(&values);
        prop_assert_eq!(compress_delta_parallel(&delta, threads), delta.compress());
    }

    #[test]
    fn merge_then_reencode_preserves_every_tuple(
        main_vals in prop::collection::vec(any::<u64>(), 0..300),
        delta_vals in prop::collection::vec(any::<u64>(), 0..300),
    ) {
        // Full-width values: stress dictionary sizes close to tuple counts.
        let main = MainPartition::from_values(&main_vals);
        let delta = delta_from(&delta_vals);
        let out = merge_column_optimized(&main, &delta).main;
        for (i, v) in main_vals.iter().enumerate() {
            prop_assert_eq!(out.get(i), *v);
        }
        for (k, v) in delta_vals.iter().enumerate() {
            prop_assert_eq!(out.get(main_vals.len() + k), *v);
        }
    }
}

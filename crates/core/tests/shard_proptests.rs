//! Property test: sharding is transparent. Any interleaving of inserts,
//! updates, deletes and merges applied to a [`ShardedTable`] and to a
//! single [`OnlineTable`] must leave the *same logical table*: identical
//! visible rows (position by position), identical validity, identical
//! aggregates — regardless of shard count, routing scheme, or when each
//! side chose to merge which shard.

use hyrise_core::shard::{ShardBy, ShardRowId, ShardedTable};
use hyrise_core::OnlineTable;
use proptest::prelude::*;

const COLS: usize = 2;

/// Deterministic row payload for a value seed.
fn row(seed: u64) -> Vec<u64> {
    (0..COLS as u64)
        .map(|c| seed.wrapping_mul(0x9E37).wrapping_add(c * 1_000_003) % 100_000)
        .collect()
}

/// One logical operation, encoded from raw proptest integers.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert {
        seed: u64,
    },
    Update {
        target: u64,
        seed: u64,
    },
    Delete {
        target: u64,
    },
    /// Merge one shard on the sharded side, and (independently) the single
    /// table — equivalence must hold no matter which side merged when.
    Merge {
        shard: u64,
        single_too: bool,
    },
}

fn decode(code: u8, a: u64, b: u64) -> Op {
    match code % 8 {
        0..=3 => Op::Insert { seed: a },
        4 => Op::Update { target: a, seed: b },
        5 => Op::Delete { target: a },
        _ => Op::Merge {
            shard: a,
            single_too: b.is_multiple_of(2),
        },
    }
}

fn apply_all(
    sharded: &ShardedTable<u64>,
    single: &OnlineTable<u64>,
    ops: &[(u8, u64, u64)],
) -> (Vec<ShardRowId>, Vec<usize>) {
    // Logical id `i` = the i-th appended row on either side.
    let mut sharded_ids: Vec<ShardRowId> = Vec::new();
    let mut single_ids: Vec<usize> = Vec::new();
    for &(code, a, b) in ops {
        match decode(code, a, b) {
            Op::Insert { seed } => {
                let r = row(seed);
                sharded_ids.push(sharded.insert_row(&r));
                single_ids.push(single.insert_row(&r));
            }
            Op::Update { target, seed } => {
                if sharded_ids.is_empty() {
                    continue;
                }
                let i = (target as usize) % sharded_ids.len();
                let r = row(seed);
                sharded_ids.push(sharded.update_row(sharded_ids[i], &r));
                single_ids.push(single.update_row(single_ids[i], &r));
            }
            Op::Delete { target } => {
                if sharded_ids.is_empty() {
                    continue;
                }
                let i = (target as usize) % sharded_ids.len();
                sharded.delete_row(sharded_ids[i]);
                single.delete_row(single_ids[i]);
            }
            Op::Merge { shard, single_too } => {
                let s = (shard as usize) % sharded.num_shards();
                let _ = sharded.shard(s).merge(1, None);
                if single_too {
                    let _ = single.merge(1, None);
                }
            }
        }
    }
    (sharded_ids, single_ids)
}

/// Assert both sides describe the same logical table.
fn assert_equivalent(
    sharded: &ShardedTable<u64>,
    single: &OnlineTable<u64>,
    sharded_ids: &[ShardRowId],
    single_ids: &[usize],
) {
    assert_eq!(sharded.row_count(), single.row_count(), "total rows");
    assert_eq!(
        sharded.valid_row_count(),
        single.valid_row_count(),
        "visible rows"
    );
    let mut sum = [0u128; COLS];
    let mut valid_rows = 0usize;
    for (sid, uid) in sharded_ids.iter().zip(single_ids) {
        assert_eq!(
            sharded.is_valid(*sid),
            single.is_valid(*uid),
            "visibility of logical row must match"
        );
        assert_eq!(sharded.row(*sid), single.row(*uid), "row payload");
        if single.is_valid(*uid) {
            valid_rows += 1;
            for (c, acc) in sum.iter_mut().enumerate() {
                *acc += single.get(c, *uid) as u128;
            }
        }
    }
    assert_eq!(valid_rows, single.valid_row_count(), "id list covers table");
    // The same aggregates, recomputed from the sharded side's snapshots
    // (exercises the fan-out read path rather than trusting the id list).
    for (c, want) in sum.iter().enumerate() {
        let got: u128 = sharded
            .snapshots()
            .iter()
            .map(|snap| {
                (0..snap.row_count())
                    .filter(|&r| snap.is_valid(r))
                    .map(|r| snap.col(c).get(r) as u128)
                    .sum::<u128>()
            })
            .sum();
        assert_eq!(got, *want, "column {c} aggregate via snapshots");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_equals_single_table_under_any_interleaving(
        shards in 1usize..5,
        range_partitioned in any::<bool>(),
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..250),
    ) {
        let sharded = if range_partitioned {
            // Bounds quarter the 0..100_000 key domain produced by `row`.
            let bounds: Vec<u64> = (1..shards as u64).map(|i| i * 100_000 / shards as u64).collect();
            ShardedTable::<u64>::builder()
                .partitioning(ShardBy::Range(bounds))
                .columns(COLS)
                .build()
                .unwrap()
        } else {
            ShardedTable::<u64>::builder()
                .shards(shards)
                .columns(COLS)
                .build()
                .unwrap()
        };
        let single = OnlineTable::<u64>::new(COLS);
        let (sharded_ids, single_ids) = apply_all(&sharded, &single, &ops);
        assert_equivalent(&sharded, &single, &sharded_ids, &single_ids);

        // Quiescing both sides afterwards must change nothing visible.
        sharded.merge_all(1).unwrap();
        let _ = single.merge(1, None);
        assert_equivalent(&sharded, &single, &sharded_ids, &single_ids);
        prop_assert_eq!(sharded.delta_len(), 0);
    }
}

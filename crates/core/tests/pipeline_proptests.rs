//! Cross-strategy merge-pipeline property test: for **arbitrary**
//! insert/update/delete/merge interleavings, every merge configuration —
//! naive, optimized, parallel; 1–4 threads; with and without a
//! [`MergeBudget`] — must leave **byte-identical** state: the same merged
//! main partitions (dictionary values and packed code words), the same
//! validity, the same visible rows. On a single [`OnlineTable`] and on
//! 1–4-shard hash- and range-partitioned [`ShardedTable`]s.

use hyrise_core::governor::{GovernorConfig, LoadView, ResourceGovernor};
use hyrise_core::shard::{ShardBy, ShardRowId, ShardedTable};
use hyrise_core::{MergeBudget, MergeGrant, MergePolicy, MergeStrategy, OnlineTable};
use proptest::prelude::*;

const COLS: usize = 3;

/// Deterministic row payload for a value seed.
fn row(seed: u64) -> Vec<u64> {
    (0..COLS as u64)
        .map(|c| seed.wrapping_mul(0x9E37).wrapping_add(c * 1_000_003) % 100_000)
        .collect()
}

/// The merge configurations under test; index 0 is the reference. Threads
/// beyond the host's cores are legal (the pipeline clamps them).
fn configs(t1: usize, t2: usize, t3: usize) -> Vec<MergeGrant> {
    vec![
        MergeGrant::with_threads(1).strategy(MergeStrategy::Optimized),
        MergeGrant::with_threads(t1).strategy(MergeStrategy::Naive),
        MergeGrant::with_threads(t2)
            .strategy(MergeStrategy::Naive)
            .budget(MergeBudget::columns(1)),
        MergeGrant::with_threads(1)
            .strategy(MergeStrategy::Optimized)
            .budget(MergeBudget::columns(2)),
        MergeGrant::with_threads(t3).strategy(MergeStrategy::Parallel),
        MergeGrant::with_threads(t1)
            .strategy(MergeStrategy::Parallel)
            .budget(MergeBudget::columns(1)),
    ]
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert { seed: u64 },
    Update { target: u64, seed: u64 },
    Delete { target: u64 },
    Merge,
}

fn decode(code: u8, a: u64, b: u64) -> Op {
    match code % 8 {
        0..=3 => Op::Insert { seed: a },
        4 => Op::Update { target: a, seed: b },
        5 => Op::Delete { target: a },
        _ => Op::Merge,
    }
}

/// Byte-level equality of two online tables' main partitions + validity.
fn assert_tables_identical(a: &OnlineTable<u64>, b: &OnlineTable<u64>, what: &str) {
    let (sa, sb) = (a.snapshot(), b.snapshot());
    assert_eq!(sa.row_count(), sb.row_count(), "{what}: row counts");
    for c in 0..COLS {
        assert_eq!(
            sa.col(c).main().dictionary().values(),
            sb.col(c).main().dictionary().values(),
            "{what}: column {c} dictionary"
        );
        assert_eq!(
            sa.col(c).main().packed_codes().words(),
            sb.col(c).main().packed_codes().words(),
            "{what}: column {c} packed words"
        );
        assert_eq!(
            sa.col(c).main().code_bits(),
            sb.col(c).main().code_bits(),
            "{what}: column {c} code width"
        );
    }
    for r in 0..sa.row_count() {
        assert_eq!(sa.is_valid(r), sb.is_valid(r), "{what}: validity row {r}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_strategies_and_budgets_agree_on_online_table(
        t1 in 1usize..5,
        t2 in 1usize..5,
        t3 in 1usize..5,
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..180),
    ) {
        let grants = configs(t1, t2, t3);
        let tables: Vec<OnlineTable<u64>> =
            (0..grants.len()).map(|_| OnlineTable::new(COLS)).collect();
        let mut ids: Vec<usize> = Vec::new();
        for &(code, a, b) in &ops {
            match decode(code, a, b) {
                Op::Insert { seed } => {
                    let r = row(seed);
                    let mut last = 0;
                    for t in &tables {
                        last = t.insert_row(&r);
                    }
                    ids.push(last);
                }
                Op::Update { target, seed } => {
                    if ids.is_empty() {
                        continue;
                    }
                    let i = ids[(target as usize) % ids.len()];
                    let r = row(seed);
                    let mut last = 0;
                    for t in &tables {
                        last = t.update_row(i, &r);
                    }
                    ids.push(last);
                }
                Op::Delete { target } => {
                    if ids.is_empty() {
                        continue;
                    }
                    let i = ids[(target as usize) % ids.len()];
                    for t in &tables {
                        t.delete_row(i);
                    }
                }
                Op::Merge => {
                    for (t, g) in tables.iter().zip(&grants) {
                        t.merge_with(*g, None).unwrap();
                    }
                }
            }
        }
        // Quiesce every config, then compare byte-for-byte.
        for (t, g) in tables.iter().zip(&grants) {
            t.merge_with(*g, None).unwrap();
            prop_assert_eq!(t.delta_len(), 0);
        }
        for (k, t) in tables.iter().enumerate().skip(1) {
            assert_tables_identical(&tables[0], t, &format!("grant {:?}", grants[k]));
        }
    }

    #[test]
    fn all_strategies_and_budgets_agree_on_sharded_table(
        shards in 1usize..5,
        range_partitioned in any::<bool>(),
        t1 in 1usize..5,
        t2 in 1usize..5,
        t3 in 1usize..5,
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..140),
    ) {
        let grants = configs(t1, t2, t3);
        let make = || {
            if range_partitioned {
                let bounds: Vec<u64> =
                    (1..shards as u64).map(|i| i * 100_000 / shards as u64).collect();
                ShardedTable::<u64>::builder()
                    .partitioning(ShardBy::Range(bounds))
                    .columns(COLS)
                    .build()
                    .unwrap()
            } else {
                ShardedTable::<u64>::builder()
                    .shards(shards)
                    .columns(COLS)
                    .build()
                    .unwrap()
            }
        };
        let tables: Vec<ShardedTable<u64>> = (0..grants.len()).map(|_| make()).collect();
        let mut ids: Vec<ShardRowId> = Vec::new();
        for &(code, a, b) in &ops {
            match decode(code, a, b) {
                Op::Insert { seed } => {
                    let r = row(seed);
                    let mut last = ShardRowId { shard: 0, row: 0 };
                    for t in &tables {
                        last = t.insert_row(&r);
                    }
                    ids.push(last);
                }
                Op::Update { target, seed } => {
                    if ids.is_empty() {
                        continue;
                    }
                    let i = ids[(target as usize) % ids.len()];
                    let r = row(seed);
                    let mut last = ShardRowId { shard: 0, row: 0 };
                    for t in &tables {
                        last = t.update_row(i, &r);
                    }
                    ids.push(last);
                }
                Op::Delete { target } => {
                    if ids.is_empty() {
                        continue;
                    }
                    let i = ids[(target as usize) % ids.len()];
                    for t in &tables {
                        t.delete_row(i);
                    }
                }
                Op::Merge => {
                    // Merge the same shard in every config.
                    let s = (a as usize) % shards;
                    for (t, g) in tables.iter().zip(&grants) {
                        let _ = t.shard(s).merge_with(*g, None);
                    }
                }
            }
        }
        for (t, g) in tables.iter().zip(&grants) {
            t.merge_all_with(*g).unwrap();
            prop_assert_eq!(t.delta_len(), 0);
        }
        // Byte-compare shard by shard against the reference config.
        for (k, t) in tables.iter().enumerate().skip(1) {
            for s in 0..shards {
                assert_tables_identical(
                    tables[0].shard(s),
                    t.shard(s),
                    &format!("shard {s}, grant {:?}", grants[k]),
                );
            }
        }
        // And the logical rows agree through the global id list.
        for id in ids.iter().step_by(7) {
            for t in tables.iter().skip(1) {
                prop_assert_eq!(tables[0].row(*id), t.row(*id));
                prop_assert_eq!(tables[0].is_valid(*id), t.is_valid(*id));
            }
        }
    }

    /// Whatever the governor decides — any soft limit, any thread
    /// ceiling, any read thresholds, hence any row of its decision table
    /// — the grants it emits must leave the table byte-identical to the
    /// reference configuration. Adaptivity tunes cost, never results.
    #[test]
    fn governor_driven_grants_preserve_byte_identity(
        // 64 is the "no limit" sentinel (the vendored proptest stub has no
        // Option strategy).
        soft_limit_kb in 0usize..65,
        max_threads in 1usize..8,
        busy in 0usize..3,
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..160),
    ) {
        let reference = OnlineTable::<u64>::new(COLS);
        let governed = OnlineTable::<u64>::new(COLS);
        // Governor knobs drawn by proptest: a kilobyte-scale soft limit
        // (or none) flips MemoryPressure on and off mid-run as the table
        // grows and merges; the busy threshold of 0 reads/s forces the
        // Contended row whenever any concurrently running test queries.
        let config = GovernorConfig::from_policy(MergePolicy {
            delta_fraction: 0.05,
            threads: 2,
            ..MergePolicy::default()
        })
        .with_memory_soft_limit(if soft_limit_kb == 64 {
            usize::MAX
        } else {
            soft_limit_kb * 1024
        })
        .with_max_threads(max_threads)
        .with_read_thresholds(busy as f64, busy as f64);
        let gov = ResourceGovernor::new(config);
        let reference_grant = MergeGrant::with_threads(1).strategy(MergeStrategy::Optimized);
        let mut ids: Vec<usize> = Vec::new();
        for &(code, a, b) in &ops {
            match decode(code, a, b) {
                Op::Insert { seed } => {
                    let r = row(seed);
                    reference.insert_row(&r);
                    ids.push(governed.insert_row(&r));
                }
                Op::Update { target, seed } => {
                    if ids.is_empty() {
                        continue;
                    }
                    let i = ids[(target as usize) % ids.len()];
                    let r = row(seed);
                    reference.update_row(i, &r);
                    ids.push(governed.update_row(i, &r));
                }
                Op::Delete { target } => {
                    if ids.is_empty() {
                        continue;
                    }
                    let i = ids[(target as usize) % ids.len()];
                    reference.delete_row(i);
                    governed.delete_row(i);
                }
                Op::Merge => {
                    reference.merge_with(reference_grant, None).unwrap();
                    // Merge unconditionally (selection gates *when*, the
                    // property is about *what* the grant produces) with
                    // whatever grant the governor's live signals yield.
                    let plan = gov.plan(&LoadView::of_source(&governed));
                    governed.merge_with(plan.grant, None).unwrap();
                }
            }
        }
        reference.merge_with(reference_grant, None).unwrap();
        let final_plan = gov.plan(&LoadView::of_source(&governed));
        governed.merge_with(final_plan.grant, None).unwrap();
        prop_assert_eq!(governed.delta_len(), 0);
        assert_tables_identical(
            &reference,
            &governed,
            &format!("governor grants, last = {:?}", final_plan.grant),
        );
    }
}

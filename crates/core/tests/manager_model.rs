//! Model-based testing of [`OnlineTable`]: an arbitrary interleaving of
//! inserts, updates, deletes, full merges, incremental merge steps and
//! cancelled merges must behave exactly like a plain vector-of-rows model.

use hyrise_core::OnlineTable;
use proptest::prelude::*;
use std::sync::atomic::AtomicBool;

const COLS: usize = 3;

#[derive(Clone, Debug)]
enum Op {
    Insert(u64),
    Update { row_choice: u16, seed: u64 },
    Delete { row_choice: u16 },
    Merge,
    CancelledMerge,
    IncrementalSteps(u8),
    AbortedIncremental(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => any::<u64>().prop_map(Op::Insert),
        3 => (any::<u16>(), any::<u64>()).prop_map(|(row_choice, seed)| Op::Update { row_choice, seed }),
        2 => any::<u16>().prop_map(|row_choice| Op::Delete { row_choice }),
        1 => Just(Op::Merge),
        1 => Just(Op::CancelledMerge),
        1 => (0u8..5).prop_map(Op::IncrementalSteps),
        1 => (0u8..5).prop_map(Op::AbortedIncremental),
    ]
}

fn row_of(seed: u64) -> Vec<u64> {
    (0..COLS as u64)
        .map(|c| seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(c))
        .collect()
}

#[derive(Default)]
struct Model {
    rows: Vec<Vec<u64>>,
    valid: Vec<bool>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn online_table_matches_model(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let table = OnlineTable::<u64>::new(COLS);
        let mut model = Model::default();

        for op in ops {
            match op {
                Op::Insert(seed) => {
                    let row = row_of(seed);
                    let id = table.insert_row(&row);
                    model.rows.push(row);
                    model.valid.push(true);
                    prop_assert_eq!(id, model.rows.len() - 1);
                }
                Op::Update { row_choice, seed } => {
                    if model.rows.is_empty() { continue; }
                    let old = row_choice as usize % model.rows.len();
                    let row = row_of(seed);
                    let id = table.update_row(old, &row);
                    model.rows.push(row);
                    model.valid.push(true);
                    model.valid[old] = false;
                    prop_assert_eq!(id, model.rows.len() - 1);
                }
                Op::Delete { row_choice } => {
                    if model.rows.is_empty() { continue; }
                    let victim = row_choice as usize % model.rows.len();
                    table.delete_row(victim);
                    model.valid[victim] = false;
                }
                Op::Merge => {
                    table.merge(2, None).unwrap();
                    prop_assert_eq!(table.delta_len(), 0);
                }
                Op::CancelledMerge => {
                    let cancel = AtomicBool::new(true);
                    let _ = table.merge(2, Some(&cancel));
                }
                Op::IncrementalSteps(n) => {
                    let mut s = table.begin_incremental_merge(1);
                    for _ in 0..n {
                        if !s.step() { break; }
                    }
                    // dropped here: unmerged columns roll back
                }
                Op::AbortedIncremental(n) => {
                    let mut s = table.begin_incremental_merge(1);
                    for _ in 0..n {
                        if !s.step() { break; }
                    }
                    s.abort();
                }
            }
            // Full-state check after every operation.
            prop_assert_eq!(table.row_count(), model.rows.len());
            prop_assert_eq!(
                table.valid_row_count(),
                model.valid.iter().filter(|v| **v).count()
            );
        }
        // Final deep check of all rows and validity.
        for (r, want) in model.rows.iter().enumerate() {
            prop_assert_eq!(&table.row(r), want, "row {}", r);
            prop_assert_eq!(table.is_valid(r), model.valid[r], "validity {}", r);
        }
    }
}

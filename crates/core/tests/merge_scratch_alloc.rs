//! Allocation-counting harness for the merge pipeline's steady state: a
//! warmed [`MergeScratch`] whose caller recycles retired partitions must
//! perform **no heap allocation for dictionary/aux/output buffers** per
//! merge (the ISSUE's acceptance criterion).
//!
//! A wrapping global allocator records every allocation while enabled. The
//! buffers under test (delta dictionary, delta codes, `X_M`/`X_D`, merged
//! dictionary, packed output words) are all tens of kilobytes to megabytes
//! at the test's shape, so asserting that **zero allocations of ≥ 4 KiB**
//! happen during warmed merges proves none of them was reallocated, while
//! still tolerating the handful of tiny fixed-size allocations a merge
//! legitimately makes (the CSB+ iterator's descent stack, the region-split
//! plan, thread bookkeeping on the table path).

use hyrise_core::shard::{ShardBy, ShardedTable};
use hyrise_core::{merge_column_with, MergeGrant, MergeScratch, MergeStrategy, OnlineTable};
use hyrise_storage::{DeltaPartition, MainPartition};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Allocations at or above this size are counted as "large" — every
/// dictionary/aux/output buffer at the test's shape is far larger.
const LARGE: usize = 4096;

static ENABLED: AtomicBool = AtomicBool::new(false);
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
static LARGE_ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

fn record(size: usize) {
    if ENABLED.load(Ordering::Relaxed) {
        TOTAL_BYTES.fetch_add(size as u64, Ordering::Relaxed);
        if size >= LARGE {
            LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
            if std::env::var_os("ALLOC_TRACE").is_some() {
                ENABLED.store(false, Ordering::Relaxed);
                eprintln!(
                    "large alloc of {size} bytes at:\n{}",
                    std::backtrace::Backtrace::force_capture()
                );
                ENABLED.store(true, Ordering::Relaxed);
            }
        }
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size > layout.size() {
            record(new_size);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct Counts {
    total_bytes: u64,
    large_allocs: u64,
}

/// Run `f` with counting enabled; returns what was allocated inside.
fn counted<R>(f: impl FnOnce() -> R) -> (R, Counts) {
    TOTAL_BYTES.store(0, Ordering::Relaxed);
    LARGE_ALLOCS.store(0, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
    let r = f();
    ENABLED.store(false, Ordering::Relaxed);
    (
        r,
        Counts {
            total_bytes: TOTAL_BYTES.load(Ordering::Relaxed),
            large_allocs: LARGE_ALLOCS.load(Ordering::Relaxed),
        },
    )
}

/// Both scenarios live in one #[test] so the global counters are never
/// shared between concurrently running test threads.
#[test]
fn warmed_scratch_merges_without_buffer_allocations() {
    // --- Scenario A: column-level pipeline, strict zero-buffer-alloc. ---
    // Shape: every buffer involved is tens of KB to MB, dwarfing the 4 KiB
    // "large" threshold.
    let mut x = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let main_vals: Vec<u64> = (0..200_000).map(|_| next() % 20_000).collect();
    let delta_vals: Vec<u64> = (0..20_000).map(|_| next() % 30_000).collect();
    let main = MainPartition::from_values(&main_vals);
    let mut delta = DeltaPartition::new();
    for &v in &delta_vals {
        delta.insert(v);
    }

    let mut scratch = MergeScratch::new();
    // Warm-up: two merges with recycling reach the arena's fixed point.
    for _ in 0..2 {
        let out = merge_column_with(&main, &delta, MergeStrategy::Optimized, 1, &mut scratch);
        scratch.recycle_main(out.main);
    }
    let spare_before = scratch.spare_capacities();
    let (_, counts) = counted(|| {
        for _ in 0..3 {
            let out = merge_column_with(&main, &delta, MergeStrategy::Optimized, 1, &mut scratch);
            scratch.recycle_main(out.main);
        }
    });
    assert_eq!(
        counts.large_allocs, 0,
        "warmed column merge must not allocate any dictionary/aux/output \
         buffer (saw {} large allocations, {} bytes total)",
        counts.large_allocs, counts.total_bytes
    );
    assert!(
        counts.total_bytes < 64 * 1024,
        "three warmed merges should allocate at most bookkeeping bytes, \
         saw {}",
        counts.total_bytes
    );
    assert_eq!(
        scratch.spare_capacities(),
        spare_before,
        "spare capacities are at their fixed point"
    );

    // --- Scenario B: OnlineTable steady state through the scratch pool. ---
    // Repeated same-size regenerations (empty delta) after warm-up must not
    // allocate large buffers either: the commit path recycles each retired
    // main into the pool and the next merge draws from it.
    let table = OnlineTable::<u64>::new(2);
    for i in 0..50_000u64 {
        table.insert_row(&[i % 10_000, (i * 7) % 5_000]);
    }
    table.merge(1, None).unwrap();
    table.merge(1, None).unwrap(); // warm the pool with recycled buffers
    let (_, counts) = counted(|| {
        for _ in 0..3 {
            table.merge_with(MergeGrant::with_threads(1), None).unwrap();
        }
    });
    assert_eq!(
        counts.large_allocs, 0,
        "steady-state table merges must draw every buffer from the pool \
         (saw {} large allocations, {} bytes total)",
        counts.large_allocs, counts.total_bytes
    );

    // --- Scenario C: concurrent multi-worker ShardedTable merges through
    // the shared SpareBank. ---
    // Two shards, two columns, two merge workers per shard merge: the
    // column→worker assignment is racy, so per-arena spares used to strand
    // retired buffers in the wrong worker's arena; the table-level bank
    // makes the spare pool one multiset, and best-fit takes give every
    // request its exact-size match. The data is constructed so every
    // column on every shard has the same dictionary size (500 distinct
    // values) and the same row count — the working sets of all concurrent
    // requests are interchangeable, so zero large allocations must hold
    // regardless of which worker takes which buffer first.
    let sharded = ShardedTable::<u64>::builder()
        .partitioning(ShardBy::Range(vec![500]))
        .columns(2)
        .build()
        .unwrap();
    let rows: Vec<[u64; 2]> = (0..60_000u64)
        .map(|i| [i % 1_000, 1_000 + i % 1_000])
        .collect();
    sharded.insert_rows(&rows).unwrap();
    let grant = MergeGrant::with_threads(2);
    let concurrent_merge = || {
        std::thread::scope(|s| {
            for shard in sharded.shards() {
                s.spawn(|| {
                    shard.merge_with(grant, None).unwrap();
                });
            }
        });
    };
    // Warm-up: the first merge builds the mains, the second banks
    // exact-size spares for every column of every shard and warms each
    // worker's intermediate arena.
    concurrent_merge();
    concurrent_merge();
    let warmed = sharded.spare_bank().spare_capacities();
    assert!(warmed.0 > 0 && warmed.1 > 0, "bank warmed: {warmed:?}");
    // The column→worker race can transiently leave the bank one buffer
    // short (a worker takes before its peer returns), which shows up as a
    // handful of large allocations in an unlucky round. That is a timing
    // artifact, not a leak — so a noisy round re-warms and retries; only
    // failing every attempt means the pool genuinely stopped recycling.
    let mut last = Counts {
        total_bytes: 0,
        large_allocs: 0,
    };
    let reached_zero = (0..5).any(|_| {
        concurrent_merge(); // settle the bank after a noisy round
        let (_, counts) = counted(|| {
            for _ in 0..3 {
                concurrent_merge();
            }
        });
        let clean = counts.large_allocs == 0;
        last = counts;
        clean
    });
    assert!(
        reached_zero,
        "warmed multi-worker sharded merges must draw every \
         dictionary/output buffer from the shared SpareBank \
         (every attempt allocated; last saw {} large allocations, {} bytes \
         total)",
        last.large_allocs, last.total_bytes
    );
    let settled = sharded.spare_bank().spare_capacities();
    assert!(
        settled.0 > 0 && settled.1 > 0,
        "the bank still holds banked spares after the runs: {settled:?}"
    );
}

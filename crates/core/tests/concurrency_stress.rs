//! Time-bounded concurrency stress: many writers, continuous lock-free
//! readers, and a merger, all racing on the same table. The default run
//! is ~a second so the suite stays fast; CI's stress job scales it up in
//! release mode via environment knobs:
//!
//! * `STRESS_SECS`    — seconds per scenario (default 1)
//! * `STRESS_WRITERS` — concurrent writer threads (default 8)
//!
//! Invariants checked on every observation (same contracts as the
//! `epoch_watermark` and `consistent_cut` proptests, at full contention):
//! single-table snapshots expose only whole published batches with fully
//! written rows, and sharded fan-out reads never observe a cross-shard
//! batch torn in half — all while merges churn generations underneath.

use hyrise_core::shard::ShardedTable;
use hyrise_core::OnlineTable;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const BATCH: usize = 16;

fn knob(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn deadline() -> Instant {
    Instant::now() + Duration::from_secs(knob("STRESS_SECS", 1))
}

fn writers() -> usize {
    knob("STRESS_WRITERS", 8) as usize
}

/// Column-1 payload of the `k`-th row of the batch tagged `tag`.
fn payload(tag: u64, k: u64) -> u64 {
    tag.wrapping_mul(1_000_003).wrapping_add(k)
}

#[test]
fn single_table_snapshots_stay_batch_atomic_under_contention() {
    let table = OnlineTable::<u64>::new(2);
    let stop = AtomicBool::new(false);
    let next_tag = AtomicU64::new(1);
    let until = deadline();
    std::thread::scope(|s| {
        for _ in 0..writers() {
            let (table, stop, next_tag) = (&table, &stop, &next_tag);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let tag = next_tag.fetch_add(1, Ordering::Relaxed);
                    let rows: Vec<[u64; 2]> =
                        (0..BATCH as u64).map(|k| [tag, payload(tag, k)]).collect();
                    table.insert_rows(&rows).unwrap();
                }
            });
        }
        let (table, stop) = (&table, &stop);
        s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let _ = table.merge(2, None);
                std::thread::yield_now();
            }
        });
        // Two readers: one here, one spawned, so reads race each other too.
        let read_loop = move || {
            let mut last = 0usize;
            let mut observations = 0u64;
            while Instant::now() < until {
                let snap = table.snapshot();
                let n = snap.row_count();
                assert_eq!(n % BATCH, 0, "visible rows are whole batches");
                assert!(n >= last, "visible prefix only grows");
                last = n;
                // Spot-check a stride of blocks for fully-written rows.
                let blocks = n / BATCH;
                let mut block = observations as usize % blocks.max(1);
                while block < blocks {
                    let tag = snap.col(0).get(block * BATCH);
                    for k in 0..BATCH {
                        assert_eq!(snap.col(0).get(block * BATCH + k), tag);
                        assert_eq!(
                            snap.col(1).get(block * BATCH + k),
                            payload(tag, k as u64),
                            "a visible row is never half-written"
                        );
                    }
                    block += 97;
                }
                observations += 1;
            }
            observations
        };
        let other = s.spawn(read_loop);
        let seen = read_loop();
        assert!(seen > 0, "reader made progress");
        assert!(other.join().unwrap() > 0);
        stop.store(true, Ordering::Relaxed);
    });
    let snap = table.snapshot();
    assert_eq!(snap.row_count() % BATCH, 0);
    assert_eq!(snap.row_count(), table.row_count());
}

#[test]
fn sharded_cuts_stay_batch_atomic_under_contention() {
    let table = ShardedTable::<u64>::builder()
        .shards(4)
        .columns(2)
        .build()
        .unwrap();
    let stop = AtomicBool::new(false);
    let next_tag = AtomicU64::new(1);
    let until = deadline();
    std::thread::scope(|s| {
        for _ in 0..writers() {
            let (table, stop, next_tag) = (&table, &stop, &next_tag);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let tag = next_tag.fetch_add(1, Ordering::Relaxed);
                    // Hash routing scatters the batch across shards.
                    let rows: Vec<[u64; 2]> = (0..BATCH as u64)
                        .map(|k| [tag.wrapping_mul(31).wrapping_add(k), payload(tag, k)])
                        .collect();
                    table.insert_rows(&rows).unwrap();
                }
            });
        }
        let (table, stop) = (&table, &stop);
        s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                table.merge_all(1).unwrap();
                std::thread::yield_now();
            }
        });
        let cut_loop = move || {
            let mut last = 0usize;
            let mut observations = 0u64;
            while Instant::now() < until {
                let total: usize = table
                    .consistent_snapshots()
                    .iter()
                    .map(|snap| snap.row_count())
                    .sum();
                assert_eq!(
                    total % BATCH,
                    0,
                    "a cross-shard cut never tears a write batch"
                );
                assert!(total >= last, "cuts are monotone");
                last = total;
                observations += 1;
            }
            observations
        };
        let other = s.spawn(cut_loop);
        assert!(cut_loop() > 0, "cutter made progress");
        assert!(other.join().unwrap() > 0);
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(table.row_count() % BATCH, 0);
}

//! Simple aggregates over attributes — the "complex, unpredictable mostly
//! read operations on large sets of data with a projectivity on a few
//! columns" of Section 2, reduced to their access pattern.
//!
//! The free functions are thin compatibility wrappers over the unified
//! [`Query`] engine (via [`AttributeExecutor`]); the engine's
//! unfiltered sum keeps the multi-threaded bandwidth-bound scan behind
//! [`Query::with_threads`].

use crate::exec::AttributeExecutor;
use crate::Query;
use hyrise_storage::{Attribute, ValidityBitmap, Value};

/// Sum of the 64-bit projections of all *valid* rows of `attr`.
///
/// Demonstrates the materialization asymmetry: main tuples decode through
/// the dictionary, delta tuples are read raw.
#[deprecated(note = "use `Query::scan(0).sum(0)` against an `AttributeExecutor::with_validity`")]
pub fn sum_lossy<V: Value>(attr: &Attribute<V>, validity: &ValidityBitmap) -> u128 {
    Query::scan(0)
        .sum(0)
        .run(&AttributeExecutor::with_validity(attr, validity))
        .sum()
}

/// Number of valid rows (delegates to the bitmap; kept for operator
/// symmetry).
pub fn count_valid(validity: &ValidityBitmap) -> usize {
    validity.valid_count()
}

/// Multi-threaded full-column sum over *all* rows (no validity filter): the
/// bandwidth-bound analytical scan. With enough threads the scan saturates
/// memory bandwidth, and the main-vs-delta byte asymmetry (`E_C/8` packed
/// bytes per main tuple vs `E_j` raw bytes per delta tuple) becomes visible
/// — the read-performance cost of a large delta that Section 4 argues about.
#[deprecated(
    note = "use `Query::scan(0).sum(0).with_threads(n)` — the engine keeps the parallel scan"
)]
pub fn sum_lossy_parallel<V: Value>(attr: &Attribute<V>, threads: usize) -> u128 {
    Query::scan(0).sum(0).with_threads(threads).run(attr).sum()
}

/// Minimum and maximum value over valid rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MinMax<V> {
    /// Smallest valid value.
    pub min: V,
    /// Largest valid value.
    pub max: V,
}

impl<V: Value> MinMax<V> {
    /// Compute min/max over the valid rows of `attr`; `None` if no row is
    /// valid. On the main partition only the *set of used value ids*
    /// matters, so the engine folds over codes and decodes only the two
    /// extremes.
    #[deprecated(
        note = "use `Query::scan(0).min_max(0)` against an `AttributeExecutor::with_validity`"
    )]
    pub fn compute(attr: &Attribute<V>, validity: &ValidityBitmap) -> Option<Self> {
        Query::scan(0)
            .min_max(0)
            .run(&AttributeExecutor::with_validity(attr, validity))
            .min_max()
            .map(|(min, max)| MinMax { min, max })
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use hyrise_storage::MainPartition;

    fn setup() -> (Attribute<u64>, ValidityBitmap) {
        let mut a = Attribute::from_main(MainPartition::from_values(&[5u64, 1, 9]));
        a.append(100);
        a.append(3);
        (a, ValidityBitmap::all_valid(5))
    }

    #[test]
    fn sum_over_all_valid() {
        let (a, v) = setup();
        assert_eq!(sum_lossy(&a, &v), 5 + 1 + 9 + 100 + 3);
    }

    #[test]
    fn sum_skips_invalidated_rows() {
        let (a, mut v) = setup();
        v.invalidate(3); // the 100 in the delta
        v.invalidate(0); // the 5 in main
        assert_eq!(sum_lossy(&a, &v), 1 + 9 + 3);
        assert_eq!(count_valid(&v), 3);
    }

    #[test]
    fn min_max_spans_partitions() {
        let (a, v) = setup();
        let mm = MinMax::compute(&a, &v).unwrap();
        assert_eq!(mm, MinMax { min: 1, max: 100 });
    }

    #[test]
    fn min_max_respects_validity() {
        let (a, mut v) = setup();
        v.invalidate(3); // remove max (delta)
        v.invalidate(1); // remove min (main)
        let mm = MinMax::compute(&a, &v).unwrap();
        assert_eq!(mm, MinMax { min: 3, max: 9 });
    }

    #[test]
    fn all_invalid_yields_none() {
        let (a, mut v) = setup();
        for i in 0..5 {
            v.invalidate(i);
        }
        assert_eq!(MinMax::compute(&a, &v), None);
        assert_eq!(sum_lossy(&a, &v), 0);
    }

    #[test]
    fn parallel_sum_matches_serial_over_all_rows() {
        let mut a = Attribute::from_main(MainPartition::from_values(
            &(0..10_000u64).map(|i| (i * 31) % 977).collect::<Vec<_>>(),
        ));
        for i in 0..3_000u64 {
            a.append((i * 7) % 501);
        }
        let v = ValidityBitmap::all_valid(a.len());
        let serial = sum_lossy(&a, &v);
        for threads in [1usize, 2, 7, 16] {
            assert_eq!(sum_lossy_parallel(&a, threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_sum_edge_shapes() {
        // Empty attribute.
        let a: Attribute<u64> = Attribute::empty();
        assert_eq!(sum_lossy_parallel(&a, 4), 0);
        // Delta-only.
        let mut a: Attribute<u64> = Attribute::empty();
        for i in 0..100 {
            a.append(i);
        }
        assert_eq!(sum_lossy_parallel(&a, 8), (0..100u128).sum());
        // Main-only, more threads than rows.
        let a = Attribute::from_main(MainPartition::from_values(&[1u64, 2, 3]));
        assert_eq!(sum_lossy_parallel(&a, 64), 6);
    }

    #[test]
    fn count_clamps_to_attribute_rows_for_longer_bitmaps() {
        // The bitmap only has to *cover* the attribute; valid bits past its
        // end must not count.
        let (a, _) = setup(); // 5 rows
        let v = ValidityBitmap::all_valid(9);
        let exec = AttributeExecutor::with_validity(&a, &v);
        assert_eq!(Query::scan(0).count().run(&exec).count(), 5);
        assert_eq!(Query::scan(0).sum(0).run(&exec).sum(), 5 + 1 + 9 + 100 + 3);
    }

    #[test]
    fn overflow_safe_sum() {
        let mut a: Attribute<u64> = Attribute::empty();
        for _ in 0..4 {
            a.append(u64::MAX);
        }
        let v = ValidityBitmap::all_valid(4);
        assert_eq!(sum_lossy(&a, &v), (u64::MAX as u128) * 4);
    }
}

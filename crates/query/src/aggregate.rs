//! Simple aggregates over attributes — the "complex, unpredictable mostly
//! read operations on large sets of data with a projectivity on a few
//! columns" of Section 2, reduced to their access pattern.
//!
//! The aggregates themselves run in the unified [`crate::Query`] engine
//! (via [`crate::AttributeExecutor`]); the engine's unfiltered sum keeps
//! the multi-threaded bandwidth-bound scan behind
//! [`crate::Query::with_threads`]. This module keeps only the [`MinMax`]
//! result type and the trivial [`count_valid`].

use hyrise_storage::{ValidityBitmap, Value};

/// Number of valid rows (delegates to the bitmap; kept for operator
/// symmetry).
pub fn count_valid(validity: &ValidityBitmap) -> usize {
    validity.valid_count()
}

/// Minimum and maximum value over valid rows, as returned by
/// `Query::scan(0).min_max(col)`. On the main partition only the *set of
/// used value ids* matters, so the engine folds over codes and decodes only
/// the two extremes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MinMax<V> {
    /// Smallest valid value.
    pub min: V,
    /// Largest valid value.
    pub max: V,
}

impl<V: Value> MinMax<V> {
    /// Wrap an engine `min_max()` output pair.
    pub fn from_pair(pair: (V, V)) -> Self {
        MinMax {
            min: pair.0,
            max: pair.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::AttributeExecutor;
    use crate::Query;
    use hyrise_storage::{Attribute, MainPartition};

    fn setup() -> (Attribute<u64>, ValidityBitmap) {
        let mut a = Attribute::from_main(MainPartition::from_values(&[5u64, 1, 9]));
        a.append(100);
        a.append(3);
        (a, ValidityBitmap::all_valid(5))
    }

    fn sum(a: &Attribute<u64>, v: &ValidityBitmap) -> u128 {
        Query::scan(0)
            .sum(0)
            .run(&AttributeExecutor::with_validity(a, v))
            .sum()
    }

    fn min_max(a: &Attribute<u64>, v: &ValidityBitmap) -> Option<MinMax<u64>> {
        Query::scan(0)
            .min_max(0)
            .run(&AttributeExecutor::with_validity(a, v))
            .min_max()
            .map(MinMax::from_pair)
    }

    #[test]
    fn sum_over_all_valid() {
        let (a, v) = setup();
        assert_eq!(sum(&a, &v), 5 + 1 + 9 + 100 + 3);
    }

    #[test]
    fn sum_skips_invalidated_rows() {
        let (a, mut v) = setup();
        v.invalidate(3); // the 100 in the delta
        v.invalidate(0); // the 5 in main
        assert_eq!(sum(&a, &v), 1 + 9 + 3);
        assert_eq!(count_valid(&v), 3);
    }

    #[test]
    fn min_max_spans_partitions() {
        let (a, v) = setup();
        let mm = min_max(&a, &v).unwrap();
        assert_eq!(mm, MinMax { min: 1, max: 100 });
    }

    #[test]
    fn min_max_respects_validity() {
        let (a, mut v) = setup();
        v.invalidate(3); // remove max (delta)
        v.invalidate(1); // remove min (main)
        let mm = min_max(&a, &v).unwrap();
        assert_eq!(mm, MinMax { min: 3, max: 9 });
    }

    #[test]
    fn all_invalid_yields_none() {
        let (a, mut v) = setup();
        for i in 0..5 {
            v.invalidate(i);
        }
        assert_eq!(min_max(&a, &v), None);
        assert_eq!(sum(&a, &v), 0);
    }

    #[test]
    fn parallel_sum_matches_serial_over_all_rows() {
        let mut a = Attribute::from_main(MainPartition::from_values(
            &(0..10_000u64).map(|i| (i * 31) % 977).collect::<Vec<_>>(),
        ));
        for i in 0..3_000u64 {
            a.append((i * 7) % 501);
        }
        let v = ValidityBitmap::all_valid(a.len());
        let serial = sum(&a, &v);
        for threads in [1usize, 2, 7, 16] {
            assert_eq!(
                Query::scan(0).sum(0).with_threads(threads).run(&a).sum(),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_sum_edge_shapes() {
        // Empty attribute.
        let a: Attribute<u64> = Attribute::empty();
        assert_eq!(Query::scan(0).sum(0).with_threads(4).run(&a).sum(), 0);
        // Delta-only.
        let mut a: Attribute<u64> = Attribute::empty();
        for i in 0..100 {
            a.append(i);
        }
        assert_eq!(
            Query::scan(0).sum(0).with_threads(8).run(&a).sum(),
            (0..100u128).sum()
        );
        // Main-only, more threads than rows.
        let a = Attribute::from_main(MainPartition::from_values(&[1u64, 2, 3]));
        assert_eq!(Query::scan(0).sum(0).with_threads(64).run(&a).sum(), 6);
    }

    #[test]
    fn count_clamps_to_attribute_rows_for_longer_bitmaps() {
        // The bitmap only has to *cover* the attribute; valid bits past its
        // end must not count.
        let (a, _) = setup(); // 5 rows
        let v = ValidityBitmap::all_valid(9);
        let exec = AttributeExecutor::with_validity(&a, &v);
        assert_eq!(Query::scan(0).count().run(&exec).count(), 5);
        assert_eq!(Query::scan(0).sum(0).run(&exec).sum(), 5 + 1 + 9 + 100 + 3);
    }

    #[test]
    fn overflow_safe_sum() {
        let mut a: Attribute<u64> = Attribute::empty();
        for _ in 0..4 {
            a.append(u64::MAX);
        }
        let v = ValidityBitmap::all_valid(4);
        assert_eq!(sum(&a, &v), (u64::MAX as u128) * 4);
    }
}

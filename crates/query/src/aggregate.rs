//! Simple aggregates over attributes — the "complex, unpredictable mostly
//! read operations on large sets of data with a projectivity on a few
//! columns" of Section 2, reduced to their access pattern.

use hyrise_storage::{Attribute, ValidityBitmap, Value};

/// Sum of the 64-bit projections of all *valid* rows of `attr`.
///
/// Demonstrates the materialization asymmetry: main tuples decode through
/// the dictionary, delta tuples are read raw.
pub fn sum_lossy<V: Value>(attr: &Attribute<V>, validity: &ValidityBitmap) -> u128 {
    let mut acc: u128 = 0;
    let main = attr.main();
    let dict = main.dictionary();
    for (i, code) in main.codes().enumerate() {
        if validity.is_valid(i) {
            acc += dict.value_at(code as u32).to_u64_lossy() as u128;
        }
    }
    let base = main.len();
    for (k, v) in attr.delta().values().iter().enumerate() {
        if validity.is_valid(base + k) {
            acc += v.to_u64_lossy() as u128;
        }
    }
    acc
}

/// Number of valid rows (delegates to the bitmap; kept for operator
/// symmetry).
pub fn count_valid(validity: &ValidityBitmap) -> usize {
    validity.valid_count()
}

/// Multi-threaded full-column sum over *all* rows (no validity filter): the
/// bandwidth-bound analytical scan. With enough threads the scan saturates
/// memory bandwidth, and the main-vs-delta byte asymmetry (`E_C/8` packed
/// bytes per main tuple vs `E_j` raw bytes per delta tuple) becomes visible
/// — the read-performance cost of a large delta that Section 4 argues about.
pub fn sum_lossy_parallel<V: Value>(attr: &Attribute<V>, threads: usize) -> u128 {
    let main = attr.main();
    let n_m = main.len();
    let dict = main.dictionary();
    let delta_vals = attr.delta().values();
    let threads = threads.max(1);
    let chunk = (attr.len().div_ceil(threads)).max(1);
    let mut total: u128 = 0;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let start = (t * chunk).min(attr.len());
                let end = ((t + 1) * chunk).min(attr.len());
                s.spawn(move || {
                    let mut acc: u128 = 0;
                    if start < end {
                        if start < n_m {
                            let mut cur = main.packed_codes().cursor_at(start);
                            for _ in start..end.min(n_m) {
                                acc +=
                                    dict.value_at(cur.next_value() as u32).to_u64_lossy() as u128;
                            }
                        }
                        if end > n_m {
                            for v in &delta_vals[start.max(n_m) - n_m..end - n_m] {
                                acc += v.to_u64_lossy() as u128;
                            }
                        }
                    }
                    acc
                })
            })
            .collect();
        for h in handles {
            total += h.join().expect("sum worker");
        }
    });
    total
}

/// Minimum and maximum value over valid rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MinMax<V> {
    /// Smallest valid value.
    pub min: V,
    /// Largest valid value.
    pub max: V,
}

impl<V: Value> MinMax<V> {
    /// Compute min/max over the valid rows of `attr`; `None` if no row is
    /// valid. On the main partition only the *set of used codes* matters, so
    /// the scan runs over codes and decodes twice at the end.
    pub fn compute(attr: &Attribute<V>, validity: &ValidityBitmap) -> Option<Self> {
        let main = attr.main();
        let mut min_code: Option<u64> = None;
        let mut max_code: Option<u64> = None;
        for (i, code) in main.codes().enumerate() {
            if validity.is_valid(i) {
                min_code = Some(min_code.map_or(code, |m| m.min(code)));
                max_code = Some(max_code.map_or(code, |m| m.max(code)));
            }
        }
        let dict = main.dictionary();
        let mut min = min_code.map(|c| dict.value_at(c as u32));
        let mut max = max_code.map(|c| dict.value_at(c as u32));
        let base = main.len();
        for (k, v) in attr.delta().values().iter().enumerate() {
            if validity.is_valid(base + k) {
                min = Some(min.map_or(*v, |m| m.min(*v)));
                max = Some(max.map_or(*v, |m| m.max(*v)));
            }
        }
        match (min, max) {
            (Some(min), Some(max)) => Some(MinMax { min, max }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyrise_storage::MainPartition;

    fn setup() -> (Attribute<u64>, ValidityBitmap) {
        let mut a = Attribute::from_main(MainPartition::from_values(&[5u64, 1, 9]));
        a.append(100);
        a.append(3);
        (a, ValidityBitmap::all_valid(5))
    }

    #[test]
    fn sum_over_all_valid() {
        let (a, v) = setup();
        assert_eq!(sum_lossy(&a, &v), 5 + 1 + 9 + 100 + 3);
    }

    #[test]
    fn sum_skips_invalidated_rows() {
        let (a, mut v) = setup();
        v.invalidate(3); // the 100 in the delta
        v.invalidate(0); // the 5 in main
        assert_eq!(sum_lossy(&a, &v), 1 + 9 + 3);
        assert_eq!(count_valid(&v), 3);
    }

    #[test]
    fn min_max_spans_partitions() {
        let (a, v) = setup();
        let mm = MinMax::compute(&a, &v).unwrap();
        assert_eq!(mm, MinMax { min: 1, max: 100 });
    }

    #[test]
    fn min_max_respects_validity() {
        let (a, mut v) = setup();
        v.invalidate(3); // remove max (delta)
        v.invalidate(1); // remove min (main)
        let mm = MinMax::compute(&a, &v).unwrap();
        assert_eq!(mm, MinMax { min: 3, max: 9 });
    }

    #[test]
    fn all_invalid_yields_none() {
        let (a, mut v) = setup();
        for i in 0..5 {
            v.invalidate(i);
        }
        assert_eq!(MinMax::compute(&a, &v), None);
        assert_eq!(sum_lossy(&a, &v), 0);
    }

    #[test]
    fn parallel_sum_matches_serial_over_all_rows() {
        let mut a = Attribute::from_main(MainPartition::from_values(
            &(0..10_000u64).map(|i| (i * 31) % 977).collect::<Vec<_>>(),
        ));
        for i in 0..3_000u64 {
            a.append((i * 7) % 501);
        }
        let v = ValidityBitmap::all_valid(a.len());
        let serial = sum_lossy(&a, &v);
        for threads in [1usize, 2, 7, 16] {
            assert_eq!(sum_lossy_parallel(&a, threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_sum_edge_shapes() {
        // Empty attribute.
        let a: Attribute<u64> = Attribute::empty();
        assert_eq!(sum_lossy_parallel(&a, 4), 0);
        // Delta-only.
        let mut a: Attribute<u64> = Attribute::empty();
        for i in 0..100 {
            a.append(i);
        }
        assert_eq!(sum_lossy_parallel(&a, 8), (0..100u128).sum());
        // Main-only, more threads than rows.
        let a = Attribute::from_main(MainPartition::from_values(&[1u64, 2, 3]));
        assert_eq!(sum_lossy_parallel(&a, 64), 6);
    }

    #[test]
    fn overflow_safe_sum() {
        let mut a: Attribute<u64> = Attribute::empty();
        for _ in 0..4 {
            a.append(u64::MAX);
        }
        let v = ValidityBitmap::all_valid(4);
        assert_eq!(sum_lossy(&a, &v), (u64::MAX as u128) * 4);
    }
}

//! Point access paths over an [`Attribute`].
//!
//! Equality and range scans live in the unified [`crate::Query`] engine
//! (dictionary value-id pushdown on main, value comparison on the delta
//! tail — see [`crate::exec`]); this module keeps only the positional
//! reads that never were scans.

use hyrise_storage::{Attribute, Value};

/// Positional read ("key lookup" against the implicit tuple id): the value of
/// global row `row`. Reads the bit-packed code plus one dictionary access on
/// main, or the raw value on delta.
#[inline]
pub fn key_lookup<V: Value>(attr: &Attribute<V>, row: usize) -> V {
    attr.get(row)
}

/// Materialize the values of a set of rows.
pub fn materialize<V: Value>(attr: &Attribute<V>, rows: &[usize]) -> Vec<V> {
    rows.iter().map(|&r| attr.get(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Query;
    use hyrise_storage::MainPartition;

    /// Attribute with main [10 20 30 20 10] and delta [20 40 10].
    fn attr() -> Attribute<u64> {
        let mut a = Attribute::from_main(MainPartition::from_values(&[10u64, 20, 30, 20, 10]));
        a.append(20);
        a.append(40);
        a.append(10);
        a
    }

    #[test]
    fn key_lookup_spans_partitions() {
        let a = attr();
        assert_eq!(key_lookup(&a, 0), 10);
        assert_eq!(key_lookup(&a, 4), 10);
        assert_eq!(key_lookup(&a, 6), 40);
    }

    #[test]
    fn engine_scan_eq_finds_all_occurrences() {
        let a = attr();
        let eq = |v: u64| Query::scan(0).eq(v).run(&a).into_rows();
        assert_eq!(eq(20), vec![1, 3, 5]);
        assert_eq!(eq(10), vec![0, 4, 7]);
        assert_eq!(eq(40), vec![6]);
        assert_eq!(eq(99), Vec::<usize>::new());
    }

    #[test]
    fn engine_scan_value_only_in_delta() {
        let a = attr();
        // 40 is not in the main dictionary at all.
        assert!(a.main().dictionary().code_of(&40).is_none());
        assert_eq!(Query::scan(0).eq(40u64).run(&a).into_rows(), vec![6]);
    }

    #[test]
    fn engine_scan_range_inclusive_bounds() {
        let a = attr();
        let range = |lo: u64, hi: u64| Query::scan(0).between(lo, hi).run(&a).into_rows();
        // Ascending global row order, main rows first then delta rows.
        assert_eq!(range(10, 20), vec![0, 1, 3, 4, 5, 7]);
        assert_eq!(range(20, 30), vec![1, 2, 3, 5]);
        assert_eq!(range(35, 50), vec![6]);
        assert_eq!(range(41, 100), Vec::<usize>::new());
        // Full range returns everything.
        assert_eq!(range(0, u64::MAX).len(), 8);
    }

    #[test]
    fn materialize_preserves_row_order() {
        let a = attr();
        assert_eq!(materialize(&a, &[6, 0, 3]), vec![40, 10, 20]);
        assert_eq!(materialize(&a, &[]), Vec::<u64>::new());
    }

    #[test]
    fn empty_attribute_scans() {
        let a: Attribute<u64> = Attribute::empty();
        assert!(Query::scan(0).eq(1u64).run(&a).into_rows().is_empty());
        assert!(Query::scan(0)
            .between(0u64, 100)
            .run(&a)
            .into_rows()
            .is_empty());
    }
}

//! Point, equality and range access paths over an [`Attribute`] — thin
//! compatibility wrappers over the unified [`Query`] engine.
//!
//! The free functions predate the builder API; each is now a one-line
//! delegation, so there is exactly one scan implementation in the crate
//! (dictionary value-id pushdown on main, value comparison on the delta
//! tail — see [`crate::exec`]).

use crate::Query;
use hyrise_storage::{Attribute, Value};
use std::ops::RangeInclusive;

/// Positional read ("key lookup" against the implicit tuple id): the value of
/// global row `row`. Reads the bit-packed code plus one dictionary access on
/// main, or the raw value on delta.
#[inline]
pub fn key_lookup<V: Value>(attr: &Attribute<V>, row: usize) -> V {
    attr.get(row)
}

/// Materialize the values of a set of rows.
pub fn materialize<V: Value>(attr: &Attribute<V>, rows: &[usize]) -> Vec<V> {
    rows.iter().map(|&r| attr.get(r)).collect()
}

/// All global row ids whose value equals `v`, ascending.
///
/// Main partition: one dictionary binary search, then a sequential scan of
/// the compressed codes for the single matching value id ("most queries can
/// be executed with a binary search in the dictionary while scanning the
/// column for the encoded value only", Section 3). Delta partition: value
/// comparisons over the uncompressed tail.
#[deprecated(note = "use `Query::scan(0).eq(v)` — one engine behind every scan")]
pub fn scan_eq<V: Value>(attr: &Attribute<V>, v: &V) -> Vec<usize> {
    Query::scan(0).eq(*v).run(attr).into_rows()
}

/// All global row ids whose value lies in the inclusive range, ascending
/// (main rows first, then delta rows in insertion order).
///
/// Main partition: the dictionary maps the value range to a value-id range
/// (order-preserving encoding), then one sequential code scan with two
/// comparisons per tuple. Delta partition: value comparisons over the
/// uncompressed tail.
#[deprecated(note = "use `Query::scan(0).between(lo, hi)` — one engine behind every scan")]
pub fn scan_range<V: Value>(attr: &Attribute<V>, range: RangeInclusive<V>) -> Vec<usize> {
    Query::scan(0)
        .between(*range.start(), *range.end())
        .run(attr)
        .into_rows()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use hyrise_storage::MainPartition;

    /// Attribute with main [10 20 30 20 10] and delta [20 40 10].
    fn attr() -> Attribute<u64> {
        let mut a = Attribute::from_main(MainPartition::from_values(&[10u64, 20, 30, 20, 10]));
        a.append(20);
        a.append(40);
        a.append(10);
        a
    }

    #[test]
    fn key_lookup_spans_partitions() {
        let a = attr();
        assert_eq!(key_lookup(&a, 0), 10);
        assert_eq!(key_lookup(&a, 4), 10);
        assert_eq!(key_lookup(&a, 6), 40);
    }

    #[test]
    fn scan_eq_finds_all_occurrences() {
        let a = attr();
        assert_eq!(scan_eq(&a, &20), vec![1, 3, 5]);
        assert_eq!(scan_eq(&a, &10), vec![0, 4, 7]);
        assert_eq!(scan_eq(&a, &40), vec![6]);
        assert_eq!(scan_eq(&a, &99), Vec::<usize>::new());
    }

    #[test]
    fn scan_eq_value_only_in_delta() {
        let a = attr();
        // 40 is not in the main dictionary at all.
        assert!(a.main().dictionary().code_of(&40).is_none());
        assert_eq!(scan_eq(&a, &40), vec![6]);
    }

    #[test]
    fn scan_range_inclusive_bounds() {
        let a = attr();
        // Ascending global row order, main rows first then delta rows.
        assert_eq!(scan_range(&a, 10..=20), vec![0, 1, 3, 4, 5, 7]);
        assert_eq!(scan_range(&a, 20..=30), vec![1, 2, 3, 5]);
        assert_eq!(scan_range(&a, 35..=50), vec![6]);
        assert_eq!(scan_range(&a, 41..=100), Vec::<usize>::new());
        // Full range returns everything.
        assert_eq!(scan_range(&a, 0..=u64::MAX).len(), 8);
    }

    #[test]
    fn scan_results_match_brute_force() {
        let mut a = Attribute::from_main(MainPartition::from_values(
            &(0..500u64).map(|i| (i * 7) % 40).collect::<Vec<_>>(),
        ));
        for i in 0..200u64 {
            a.append((i * 13) % 60);
        }
        let all: Vec<u64> = (0..a.len()).map(|i| a.get(i)).collect();
        for probe in [0u64, 7, 39, 40, 59] {
            let want: Vec<usize> = all
                .iter()
                .enumerate()
                .filter(|(_, v)| **v == probe)
                .map(|(i, _)| i)
                .collect();
            let mut got = scan_eq(&a, &probe);
            got.sort_unstable();
            assert_eq!(got, want, "eq probe {probe}");
        }
        for range in [(5u64, 10u64), (0, 59), (38, 42), (60, 99)] {
            let want: Vec<usize> = all
                .iter()
                .enumerate()
                .filter(|(_, v)| **v >= range.0 && **v <= range.1)
                .map(|(i, _)| i)
                .collect();
            let mut got = scan_range(&a, range.0..=range.1);
            got.sort_unstable();
            assert_eq!(got, want, "range {range:?}");
        }
    }

    #[test]
    fn materialize_preserves_row_order() {
        let a = attr();
        assert_eq!(materialize(&a, &[6, 0, 3]), vec![40, 10, 20]);
        assert_eq!(materialize(&a, &[]), Vec::<u64>::new());
    }

    #[test]
    fn empty_attribute_scans() {
        let a: Attribute<u64> = Attribute::empty();
        assert!(scan_eq(&a, &1).is_empty());
        assert!(scan_range(&a, 0..=100).is_empty());
    }
}

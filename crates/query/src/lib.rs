//! Read operators over main+delta attributes (the query side of Section 2's
//! mixed workload: key lookups, table scans, range selects, aggregation).
//!
//! The operators make the paper's read-path trade-offs concrete:
//!
//! * On the **main partition** an equality or range predicate is answered by
//!   a binary search in the sorted dictionary (O(log |U_M|), "random
//!   access") followed by a sequential scan over the compressed codes — the
//!   order-preserving encoding lets range predicates compare codes directly.
//! * On the **delta partition** a point predicate uses the CSB+ tree; a scan
//!   touches uncompressed values, which "consume more compute resources and
//!   memory bandwidth, thereby appreciably slowing down read queries" — this
//!   is why delta size must be bounded by merging (Section 4), and it is
//!   exactly what the `ablation_read_overhead` bench measures.
//!
//! Row ids are global: main rows first, delta rows appended.
//!
//! The [`mod@shard_ops`] module lifts the same access paths to a
//! [`hyrise_core::shard::ShardedTable`]: per-shard snapshot scans fan out
//! across shards (lock-free, concurrent with per-shard merges) and stitch
//! `(shard, row)` results.

mod aggregate;
mod groupby;
mod scan;
pub mod shard_ops;
mod table_ops;

pub use aggregate::{count_valid, sum_lossy, sum_lossy_parallel, MinMax};
pub use groupby::{group_by_sum, GroupAgg};
pub use scan::{key_lookup, materialize, scan_eq, scan_range};
pub use shard_ops::{
    sharded_count_valid, sharded_min_max, sharded_scan_eq, sharded_scan_range, sharded_sum,
    snapshot_scan_eq, snapshot_scan_range, snapshot_sum,
};
pub use table_ops::{table_scan_eq_u64, table_select};

//! The unified query layer over main+delta storage (the query side of
//! Section 2's mixed workload: key lookups, table scans, range selects,
//! aggregation).
//!
//! One typed logical-query API serves every backend:
//!
//! * [`Query`] — the builder: `Query::scan(col).eq(v)` / `.between(lo, hi)`
//!   / `.and(col)` for conjunctions, plus `.project(cols)` / `.sum(col)` /
//!   `.min_max(col)` / `.count()` outputs.
//! * [`Executor`] — the one trait backends implement:
//!   [`hyrise_core::TableSnapshot`] (the canonical engine),
//!   [`hyrise_core::OnlineTable`] (snapshot-then-execute),
//!   [`hyrise_core::shard::ShardedTable`] (fan-out + merge partial
//!   results), [`hyrise_storage::Attribute`] (single column) and the
//!   heterogeneous [`hyrise_storage::Table`] (dynamically typed
//!   [`hyrise_storage::AnyValue`] predicates).
//! * [`SelectionVector`] — the positional intermediate predicates refine.
//!
//! The engine makes the paper's read-path trade-offs concrete: on the
//! **main partition** an equality or range predicate is rewritten to a
//! dictionary **value-id range**
//! ([`hyrise_storage::Dictionary::value_id_range`], O(log |U_M|)) and
//! evaluated as a sequential scan over the bit-packed codes — no tuple is
//! ever decoded; the order-preserving encoding makes code comparisons agree
//! with value comparisons. On the **delta partition** predicates fall back
//! to value comparisons over the uncompressed tail, which "consume\[s\]
//! more compute resources and memory bandwidth" — this is why delta size
//! must be bounded by merging (Section 4), and it is exactly what the
//! `query_engine` bench measures.
//!
//! Row ids are global: main rows first, delta rows appended. There is
//! exactly one read path: the legacy free functions (`scan_eq`,
//! `snapshot_scan_*`, `sharded_*`, `sum_lossy*`, …) that once wrapped the
//! engine are gone — every caller drives the [`Query`] builder directly.

mod aggregate;
mod exec;
mod groupby;
mod morsel;
mod plan;
mod scan;
mod table_ops;

pub use exec::{AttributeExecutor, Executor, Output, SelectionVector};
pub use plan::{Action, CompiledPredicate, Query};

pub use aggregate::{count_valid, MinMax};
pub use groupby::{group_by_sum, GroupAgg};
pub use scan::{key_lookup, materialize};
pub use table_ops::table_select;

//! Shard-aware read operators: scans and aggregates that fan out across a
//! [`ShardedTable`]'s shards and stitch the results.
//!
//! Each shard contributes a consistent [`TableSnapshot`] (one brief read
//! lock per shard; see [`hyrise_core::OnlineTable::snapshot`]), so the scan
//! itself runs with **no table lock held** — inserts and per-shard merges
//! proceed underneath, which is exactly the property the online merge
//! protocol was built for. The per-snapshot access paths mirror the
//! single-attribute operators in [`crate::scan_eq`] / [`crate::scan_range`]:
//! dictionary binary search
//! plus a packed-code scan on the main partition, CSB+ postings on a frozen
//! delta, and a raw linear pass over the (small, merge-bounded) active
//! delta.
//!
//! Unlike the raw attribute scans, every operator here filters by validity
//! — the sharded facade's contract is "visible rows", since routing hides
//! the physical layout from the caller anyway.

use hyrise_core::shard::{ShardRowId, ShardedTable};
use hyrise_core::TableSnapshot;
use hyrise_storage::Value;
use std::ops::RangeInclusive;

/// Valid snapshot rows (shard-local ids, ascending) whose column `col`
/// equals `v`.
pub fn snapshot_scan_eq<V: Value>(snap: &TableSnapshot<V>, col: usize, v: &V) -> Vec<usize> {
    let c = snap.col(col);
    let main = c.main();
    let mut out = match main.dictionary().code_of(v) {
        Some(code) => main.packed_codes().positions_eq(code as u64),
        None => Vec::new(),
    };
    let mut base = main.len();
    if let Some(frozen) = c.frozen() {
        if let Some(postings) = frozen.lookup(v) {
            out.extend(postings.map(|tid| base + tid as usize));
        }
        base += frozen.len();
    }
    for (k, av) in c.active().iter().enumerate() {
        if av == v {
            out.push(base + k);
        }
    }
    out.retain(|&r| snap.is_valid(r));
    out
}

/// Valid snapshot rows (shard-local ids) whose column `col` lies in the
/// inclusive range. Main rows come first in ascending row order, frozen
/// rows grouped by value (CSB+ walk order), active rows last in insertion
/// order.
pub fn snapshot_scan_range<V: Value>(
    snap: &TableSnapshot<V>,
    col: usize,
    range: RangeInclusive<V>,
) -> Vec<usize> {
    let c = snap.col(col);
    let main = c.main();
    let mut out = match main.dictionary().code_range(range.clone()) {
        Some(codes) => main
            .packed_codes()
            .positions_in_range(*codes.start() as u64, *codes.end() as u64),
        None => Vec::new(),
    };
    let mut base = main.len();
    if let Some(frozen) = c.frozen() {
        for (value, postings) in frozen.index().iter_from(range.start()) {
            if value > *range.end() {
                break;
            }
            out.extend(postings.map(|tid| base + tid as usize));
        }
        base += frozen.len();
    }
    for (k, av) in c.active().iter().enumerate() {
        if av >= range.start() && av <= range.end() {
            out.push(base + k);
        }
    }
    out.retain(|&r| snap.is_valid(r));
    out
}

/// Sum of the 64-bit projections of column `col` over the snapshot's valid
/// rows (main tuples decode through the dictionary, delta tuples are read
/// raw — the materialization asymmetry of Section 4).
pub fn snapshot_sum<V: Value>(snap: &TableSnapshot<V>, col: usize) -> u128 {
    let c = snap.col(col);
    let main = c.main();
    let dict = main.dictionary();
    let mut acc: u128 = 0;
    for (i, code) in main.codes().enumerate() {
        if snap.is_valid(i) {
            acc += dict.value_at(code as u32).to_u64_lossy() as u128;
        }
    }
    let mut base = main.len();
    if let Some(frozen) = c.frozen() {
        for (k, v) in frozen.values().iter().enumerate() {
            if snap.is_valid(base + k) {
                acc += v.to_u64_lossy() as u128;
            }
        }
        base += frozen.len();
    }
    for (k, v) in c.active().iter().enumerate() {
        if snap.is_valid(base + k) {
            acc += v.to_u64_lossy() as u128;
        }
    }
    acc
}

/// Min and max of column `col` over the snapshot's valid rows; `None` when
/// no row is valid.
pub fn snapshot_min_max<V: Value>(snap: &TableSnapshot<V>, col: usize) -> Option<(V, V)> {
    let c = snap.col(col);
    let mut mm: Option<(V, V)> = None;
    let mut fold = |v: V| {
        mm = Some(match mm {
            None => (v, v),
            Some((lo, hi)) => (lo.min(v), hi.max(v)),
        });
    };
    let main = c.main();
    let dict = main.dictionary();
    for (i, code) in main.codes().enumerate() {
        if snap.is_valid(i) {
            fold(dict.value_at(code as u32));
        }
    }
    let mut base = main.len();
    if let Some(frozen) = c.frozen() {
        for (k, v) in frozen.values().iter().enumerate() {
            if snap.is_valid(base + k) {
                fold(*v);
            }
        }
        base += frozen.len();
    }
    for (k, v) in c.active().iter().enumerate() {
        if snap.is_valid(base + k) {
            fold(*v);
        }
    }
    mm
}

/// Run `f` over every shard's snapshot concurrently (one worker per shard)
/// and collect the results in shard order — the fan-out skeleton all
/// `sharded_*` operators share.
fn fan_out<V: Value, T: Send, F>(table: &ShardedTable<V>, f: F) -> Vec<T>
where
    F: Fn(usize, &TableSnapshot<V>) -> T + Sync,
{
    let snaps = table.snapshots();
    let mut out: Vec<Option<T>> = (0..snaps.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        for (slot, (i, snap)) in out.iter_mut().zip(snaps.iter().enumerate()) {
            let f = &f;
            s.spawn(move || *slot = Some(f(i, snap)));
        }
    });
    out.into_iter()
        .map(|t| t.expect("every fan-out worker fills its slot"))
        .collect()
}

/// All visible rows of the sharded table whose column `col` equals `v`,
/// fanned out shard-parallel and stitched in `(shard, row)` order.
pub fn sharded_scan_eq<V: Value>(table: &ShardedTable<V>, col: usize, v: &V) -> Vec<ShardRowId> {
    fan_out(table, |shard, snap| {
        snapshot_scan_eq(snap, col, v)
            .into_iter()
            .map(|row| ShardRowId { shard, row })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// All visible rows whose column `col` lies in the inclusive range, fanned
/// out shard-parallel and stitched in shard order (within a shard, the
/// [`snapshot_scan_range`] ordering applies).
pub fn sharded_scan_range<V: Value>(
    table: &ShardedTable<V>,
    col: usize,
    range: RangeInclusive<V>,
) -> Vec<ShardRowId> {
    fan_out(table, |shard, snap| {
        snapshot_scan_range(snap, col, range.clone())
            .into_iter()
            .map(|row| ShardRowId { shard, row })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Sum of column `col` over all visible rows of all shards.
pub fn sharded_sum<V: Value>(table: &ShardedTable<V>, col: usize) -> u128 {
    fan_out(table, |_, snap| snapshot_sum(snap, col))
        .into_iter()
        .sum()
}

/// Visible rows across all shards (snapshot-consistent per shard).
pub fn sharded_count_valid<V: Value>(table: &ShardedTable<V>) -> usize {
    fan_out(table, |_, snap| snap.validity().valid_count())
        .into_iter()
        .sum()
}

/// Min and max of column `col` over all visible rows of all shards;
/// `None` when nothing is visible.
pub fn sharded_min_max<V: Value>(table: &ShardedTable<V>, col: usize) -> Option<(V, V)> {
    fan_out(table, |_, snap| snapshot_min_max(snap, col))
        .into_iter()
        .flatten()
        .reduce(|(alo, ahi), (blo, bhi)| (alo.min(blo), ahi.max(bhi)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyrise_core::shard::ShardedTable;

    /// 4 hash shards, 2 columns; column 1 = key * 3.
    fn table(rows: u64) -> ShardedTable<u64> {
        let t = ShardedTable::hash(4, 2);
        t.insert_rows(
            &(0..rows)
                .map(|i| vec![i % 50, (i % 50) * 3])
                .collect::<Vec<_>>(),
        );
        t
    }

    fn brute_eq(t: &ShardedTable<u64>, col: usize, v: u64) -> Vec<ShardRowId> {
        let mut out = Vec::new();
        for (shard, s) in t.shards().iter().enumerate() {
            for row in 0..s.row_count() {
                if s.is_valid(row) && s.get(col, row) == v {
                    out.push(ShardRowId { shard, row });
                }
            }
        }
        out
    }

    #[test]
    fn sharded_scan_eq_matches_brute_force_across_merge_states() {
        let t = table(400);
        for probe in [0u64, 7, 49, 99] {
            assert_eq!(sharded_scan_eq(&t, 0, &probe), brute_eq(&t, 0, probe));
        }
        // Merge two shards only: scans must span main, frozen and active.
        t.shard(0).merge(1, None).unwrap();
        t.shard(2).merge(1, None).unwrap();
        t.insert_rows(
            &(0..100u64)
                .map(|i| vec![i % 50, (i % 50) * 3])
                .collect::<Vec<_>>(),
        );
        for probe in [0u64, 7, 49] {
            let got = sharded_scan_eq(&t, 0, &probe);
            let mut want = brute_eq(&t, 0, probe);
            want.sort_unstable();
            let mut got_sorted = got.clone();
            got_sorted.sort_unstable();
            assert_eq!(got_sorted, want, "probe {probe}");
        }
        // Second column scans too.
        assert_eq!(sharded_scan_eq(&t, 1, &21).len(), brute_eq(&t, 1, 21).len());
    }

    #[test]
    fn sharded_scan_range_matches_brute_force() {
        let t = table(300);
        t.shard(1).merge(1, None).unwrap();
        for (lo, hi) in [(0u64, 10u64), (25, 49), (40, 200), (60, 80)] {
            let got: std::collections::BTreeSet<ShardRowId> =
                sharded_scan_range(&t, 0, lo..=hi).into_iter().collect();
            let want: std::collections::BTreeSet<ShardRowId> =
                (lo..=hi.min(49)).flat_map(|v| brute_eq(&t, 0, v)).collect();
            assert_eq!(got, want, "range {lo}..={hi}");
        }
    }

    #[test]
    fn scans_filter_invalidated_rows() {
        let t = table(200);
        let hits = sharded_scan_eq(&t, 0, &13);
        assert!(!hits.is_empty());
        for id in &hits {
            t.delete_row(*id);
        }
        assert_eq!(sharded_scan_eq(&t, 0, &13), Vec::new());
        assert_eq!(sharded_count_valid(&t), 200 - hits.len());
    }

    #[test]
    fn sharded_aggregates_match_brute_force() {
        let t = table(500);
        t.shard(3).merge(1, None).unwrap();
        let mut want_sum: u128 = 0;
        let mut want_mm: Option<(u64, u64)> = None;
        for s in t.shards() {
            for row in 0..s.row_count() {
                if s.is_valid(row) {
                    let v = s.get(1, row);
                    want_sum += v as u128;
                    want_mm = Some(match want_mm {
                        None => (v, v),
                        Some((lo, hi)) => (lo.min(v), hi.max(v)),
                    });
                }
            }
        }
        assert_eq!(sharded_sum(&t, 1), want_sum);
        assert_eq!(sharded_min_max(&t, 1), want_mm);
        assert_eq!(sharded_min_max(&t, 1), Some((0, 49 * 3)));
    }

    #[test]
    fn empty_table_aggregates() {
        let t = ShardedTable::<u64>::hash(2, 1);
        assert_eq!(sharded_sum(&t, 0), 0);
        assert_eq!(sharded_count_valid(&t), 0);
        assert_eq!(sharded_min_max(&t, 0), None);
        assert_eq!(sharded_scan_eq(&t, 0, &1), Vec::new());
        assert_eq!(sharded_scan_range(&t, 0, 0..=10), Vec::new());
    }

    #[test]
    fn scans_are_stable_while_merges_run() {
        // The lock-free property: scans against snapshots keep returning
        // correct results while every shard merges concurrently.
        let t = std::sync::Arc::new(table(2_000));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let (t2, stop2) = (std::sync::Arc::clone(&t), std::sync::Arc::clone(&stop));
            s.spawn(move || {
                while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                    t2.merge_all(1);
                    t2.insert_rows(
                        &(0..40u64)
                            .map(|i| vec![i % 50, (i % 50) * 3])
                            .collect::<Vec<_>>(),
                    );
                }
            });
            // Each visible key-0 row contributes 0 to the sum of col 0 times
            // nothing — instead assert on an invariant: every scan hit
            // really holds the probed value.
            for _ in 0..200 {
                for id in sharded_scan_eq(&t, 0, &7) {
                    assert_eq!(t.get(id, 0), 7);
                    assert_eq!(t.get(id, 1), 21);
                }
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    }
}

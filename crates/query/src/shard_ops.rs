//! Shard- and snapshot-aware read operators — thin compatibility wrappers
//! over the unified [`Query`] engine.
//!
//! The free functions predate the builder API: each is now a one-line
//! delegation to the [`Executor`](crate::Executor) implementations on
//! [`TableSnapshot`] (the canonical engine) and [`ShardedTable`] (fan-out +
//! merge), so adding an operator or a backend no longer multiplies this
//! surface. Every operator filters by validity — the sharded facade's
//! contract is "visible rows", since routing hides the physical layout from
//! the caller anyway. Scans run against consistent snapshots with **no
//! table lock held** — inserts and per-shard merges proceed underneath,
//! which is exactly the property the online merge protocol was built for.
//!
//! Result ordering: within a snapshot, ascending row ids (main rows first,
//! then frozen-delta rows, then active rows, all in row order); across
//! shards, stitched in `(shard, row)` order.

use crate::Query;
use hyrise_core::shard::{ShardRowId, ShardedTable};
use hyrise_core::TableSnapshot;
use hyrise_storage::Value;
use std::ops::RangeInclusive;

/// Valid snapshot rows (shard-local ids, ascending) whose column `col`
/// equals `v`.
#[deprecated(note = "use `Query::scan(col).eq(v)` against the snapshot")]
pub fn snapshot_scan_eq<V: Value>(snap: &TableSnapshot<V>, col: usize, v: &V) -> Vec<usize> {
    Query::scan(col).eq(*v).run(snap).into_rows()
}

/// Valid snapshot rows (shard-local ids, ascending) whose column `col` lies
/// in the inclusive range.
#[deprecated(note = "use `Query::scan(col).between(lo, hi)` against the snapshot")]
pub fn snapshot_scan_range<V: Value>(
    snap: &TableSnapshot<V>,
    col: usize,
    range: RangeInclusive<V>,
) -> Vec<usize> {
    Query::scan(col)
        .between(*range.start(), *range.end())
        .run(snap)
        .into_rows()
}

/// Sum of the 64-bit projections of column `col` over the snapshot's valid
/// rows (main tuples decode through the dictionary, delta tuples are read
/// raw — the materialization asymmetry of Section 4).
#[deprecated(note = "use `Query::scan(0).sum(col)` against the snapshot")]
pub fn snapshot_sum<V: Value>(snap: &TableSnapshot<V>, col: usize) -> u128 {
    Query::scan(0).sum(col).run(snap).sum()
}

/// Min and max of column `col` over the snapshot's valid rows; `None` when
/// no row is valid.
#[deprecated(note = "use `Query::scan(0).min_max(col)` against the snapshot")]
pub fn snapshot_min_max<V: Value>(snap: &TableSnapshot<V>, col: usize) -> Option<(V, V)> {
    Query::scan(0).min_max(col).run(snap).min_max()
}

/// All visible rows of the sharded table whose column `col` equals `v`,
/// fanned out shard-parallel and stitched in `(shard, row)` order.
#[deprecated(note = "use `Query::scan(col).eq(v)` against the sharded table")]
pub fn sharded_scan_eq<V: Value>(table: &ShardedTable<V>, col: usize, v: &V) -> Vec<ShardRowId> {
    Query::scan(col).eq(*v).run(table).into_rows()
}

/// All visible rows whose column `col` lies in the inclusive range, fanned
/// out shard-parallel and stitched in `(shard, row)` order.
#[deprecated(note = "use `Query::scan(col).between(lo, hi)` against the sharded table")]
pub fn sharded_scan_range<V: Value>(
    table: &ShardedTable<V>,
    col: usize,
    range: RangeInclusive<V>,
) -> Vec<ShardRowId> {
    Query::scan(col)
        .between(*range.start(), *range.end())
        .run(table)
        .into_rows()
}

/// Sum of column `col` over all visible rows of all shards.
#[deprecated(note = "use `Query::scan(0).sum(col)` against the sharded table")]
pub fn sharded_sum<V: Value>(table: &ShardedTable<V>, col: usize) -> u128 {
    Query::scan(0).sum(col).run(table).sum()
}

/// Visible rows across all shards (snapshot-consistent per shard).
#[deprecated(note = "use `Query::scan(0).count()` against the sharded table")]
pub fn sharded_count_valid<V: Value>(table: &ShardedTable<V>) -> usize {
    Query::scan(0).count().run(table).count()
}

/// Min and max of column `col` over all visible rows of all shards;
/// `None` when nothing is visible.
#[deprecated(note = "use `Query::scan(0).min_max(col)` against the sharded table")]
pub fn sharded_min_max<V: Value>(table: &ShardedTable<V>, col: usize) -> Option<(V, V)> {
    Query::scan(0).min_max(col).run(table).min_max()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use hyrise_core::shard::ShardedTable;

    /// 4 hash shards, 2 columns; column 1 = key * 3.
    fn table(rows: u64) -> ShardedTable<u64> {
        let t = ShardedTable::hash(4, 2);
        t.insert_rows(
            &(0..rows)
                .map(|i| vec![i % 50, (i % 50) * 3])
                .collect::<Vec<_>>(),
        );
        t
    }

    fn brute_eq(t: &ShardedTable<u64>, col: usize, v: u64) -> Vec<ShardRowId> {
        let mut out = Vec::new();
        for (shard, s) in t.shards().iter().enumerate() {
            for row in 0..s.row_count() {
                if s.is_valid(row) && s.get(col, row) == v {
                    out.push(ShardRowId { shard, row });
                }
            }
        }
        out
    }

    #[test]
    fn sharded_scan_eq_matches_brute_force_across_merge_states() {
        let t = table(400);
        for probe in [0u64, 7, 49, 99] {
            assert_eq!(sharded_scan_eq(&t, 0, &probe), brute_eq(&t, 0, probe));
        }
        // Merge two shards only: scans must span main, frozen and active.
        t.shard(0).merge(1, None).unwrap();
        t.shard(2).merge(1, None).unwrap();
        t.insert_rows(
            &(0..100u64)
                .map(|i| vec![i % 50, (i % 50) * 3])
                .collect::<Vec<_>>(),
        );
        for probe in [0u64, 7, 49] {
            let got = sharded_scan_eq(&t, 0, &probe);
            let mut want = brute_eq(&t, 0, probe);
            want.sort_unstable();
            let mut got_sorted = got.clone();
            got_sorted.sort_unstable();
            assert_eq!(got_sorted, want, "probe {probe}");
        }
        // Second column scans too.
        assert_eq!(sharded_scan_eq(&t, 1, &21).len(), brute_eq(&t, 1, 21).len());
    }

    #[test]
    fn sharded_scan_range_matches_brute_force() {
        let t = table(300);
        t.shard(1).merge(1, None).unwrap();
        for (lo, hi) in [(0u64, 10u64), (25, 49), (40, 200), (60, 80)] {
            let got: std::collections::BTreeSet<ShardRowId> =
                sharded_scan_range(&t, 0, lo..=hi).into_iter().collect();
            let want: std::collections::BTreeSet<ShardRowId> =
                (lo..=hi.min(49)).flat_map(|v| brute_eq(&t, 0, v)).collect();
            assert_eq!(got, want, "range {lo}..={hi}");
        }
    }

    #[test]
    fn scans_filter_invalidated_rows() {
        let t = table(200);
        let hits = sharded_scan_eq(&t, 0, &13);
        assert!(!hits.is_empty());
        for id in &hits {
            t.delete_row(*id);
        }
        assert_eq!(sharded_scan_eq(&t, 0, &13), Vec::new());
        assert_eq!(sharded_count_valid(&t), 200 - hits.len());
    }

    #[test]
    fn sharded_aggregates_match_brute_force() {
        let t = table(500);
        t.shard(3).merge(1, None).unwrap();
        let mut want_sum: u128 = 0;
        let mut want_mm: Option<(u64, u64)> = None;
        for s in t.shards() {
            for row in 0..s.row_count() {
                if s.is_valid(row) {
                    let v = s.get(1, row);
                    want_sum += v as u128;
                    want_mm = Some(match want_mm {
                        None => (v, v),
                        Some((lo, hi)) => (lo.min(v), hi.max(v)),
                    });
                }
            }
        }
        assert_eq!(sharded_sum(&t, 1), want_sum);
        assert_eq!(sharded_min_max(&t, 1), want_mm);
        assert_eq!(sharded_min_max(&t, 1), Some((0, 49 * 3)));
    }

    #[test]
    fn snapshot_ops_agree_with_sharded_ops() {
        let t = table(300);
        t.shard(2).merge(1, None).unwrap();
        t.insert_rows(
            &(0..50u64)
                .map(|i| vec![i % 50, (i % 50) * 3])
                .collect::<Vec<_>>(),
        );
        let snaps = t.snapshots();
        let stitched: Vec<ShardRowId> = snaps
            .iter()
            .enumerate()
            .flat_map(|(shard, s)| {
                snapshot_scan_eq(s, 0, &7)
                    .into_iter()
                    .map(move |row| ShardRowId { shard, row })
            })
            .collect();
        assert_eq!(stitched, sharded_scan_eq(&t, 0, &7));
        let sum: u128 = snaps.iter().map(|s| snapshot_sum(s, 1)).sum();
        assert_eq!(sum, sharded_sum(&t, 1));
        let mm = snaps
            .iter()
            .filter_map(|s| snapshot_min_max(s, 1))
            .reduce(|(alo, ahi), (blo, bhi)| (alo.min(blo), ahi.max(bhi)));
        assert_eq!(mm, sharded_min_max(&t, 1));
        assert_eq!(
            snaps
                .iter()
                .map(|s| snapshot_scan_range(s, 0, 5..=9).len())
                .sum::<usize>(),
            sharded_scan_range(&t, 0, 5..=9).len()
        );
    }

    #[test]
    fn empty_table_aggregates() {
        let t = ShardedTable::<u64>::hash(2, 1);
        assert_eq!(sharded_sum(&t, 0), 0);
        assert_eq!(sharded_count_valid(&t), 0);
        assert_eq!(sharded_min_max(&t, 0), None);
        assert_eq!(sharded_scan_eq(&t, 0, &1), Vec::new());
        assert_eq!(sharded_scan_range(&t, 0, 0..=10), Vec::new());
    }

    #[test]
    fn scans_are_stable_while_merges_run() {
        // The lock-free property: scans against snapshots keep returning
        // correct results while every shard merges concurrently.
        let t = std::sync::Arc::new(table(2_000));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let (t2, stop2) = (std::sync::Arc::clone(&t), std::sync::Arc::clone(&stop));
            s.spawn(move || {
                while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                    t2.merge_all(1);
                    t2.insert_rows(
                        &(0..40u64)
                            .map(|i| vec![i % 50, (i % 50) * 3])
                            .collect::<Vec<_>>(),
                    );
                }
            });
            // Invariant: every scan hit really holds the probed value.
            for _ in 0..200 {
                for id in sharded_scan_eq(&t, 0, &7) {
                    assert_eq!(t.get(id, 0), 7);
                    assert_eq!(t.get(id, 1), 21);
                }
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    }
}

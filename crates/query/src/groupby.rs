//! Dictionary-coded group-by — the classic column-store aggregate.
//!
//! Grouping by a dictionary-encoded column needs no hash table for the main
//! partition: the group key *is* the code, so a dense `|U_M|`-slot
//! accumulator array indexed by code does the whole job in one sequential
//! pass over packed codes (Section 2's "complex ... read operations on large
//! sets of data" executed the way a read-optimized store wants to). Delta
//! tuples fall back to a sorted-merge against the dictionary.

use hyrise_storage::{Attribute, ValidityBitmap, Value};

/// One group's aggregates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupAgg<V> {
    /// The group key.
    pub key: V,
    /// Valid rows in the group.
    pub count: u64,
    /// Sum of the 64-bit projections of another column's values for the
    /// group (0 if counting only).
    pub sum: u128,
}

/// Group the *valid* rows of `keys` and aggregate `values` (count + sum of
/// lossy projections). Returns groups in key order. `keys` and `values`
/// must be columns of the same table (equal lengths).
///
/// # Panics
/// If the columns disagree in length or the validity bitmap is shorter.
pub fn group_by_sum<K: Value, V: Value>(
    keys: &Attribute<K>,
    values: &Attribute<V>,
    validity: &ValidityBitmap,
) -> Vec<GroupAgg<K>> {
    assert_eq!(keys.len(), values.len(), "group-by columns must align");
    assert!(
        validity.len() >= keys.len(),
        "validity must cover the columns"
    );

    let main = keys.main();
    let n_m = main.len();
    // Dense per-code accumulators over the main partition.
    let mut counts = vec![0u64; main.dictionary().len()];
    let mut sums = vec![0u128; main.dictionary().len()];
    {
        let mut cur = main.packed_codes().cursor_at(0);
        for row in 0..n_m {
            let code = cur.next_value() as usize;
            if validity.is_valid(row) {
                counts[code] += 1;
                sums[code] += values.get(row).to_u64_lossy() as u128;
            }
        }
    }

    // Delta rows: accumulate per distinct delta value via the tree, then
    // merge the two sorted group streams.
    let mut delta_groups: Vec<GroupAgg<K>> = Vec::with_capacity(keys.delta().unique_len());
    for (key, postings) in keys.delta().index().iter() {
        let mut count = 0u64;
        let mut sum = 0u128;
        for tid in postings {
            let row = n_m + tid as usize;
            if validity.is_valid(row) {
                count += 1;
                sum += values.get(row).to_u64_lossy() as u128;
            }
        }
        if count > 0 {
            delta_groups.push(GroupAgg { key, count, sum });
        }
    }

    // Merge: dictionary codes are sorted by key, delta groups are in tree
    // (key) order.
    let dict = main.dictionary();
    let mut out = Vec::with_capacity(dict.len() + delta_groups.len());
    let mut d = delta_groups.into_iter().peekable();
    for code in 0..dict.len() {
        if counts[code] == 0 {
            // Key unused by valid main rows; a delta group may still exist
            // and is emitted by the key-order merge below.
        }
        let key = dict.value_at(code as u32);
        while let Some(g) = d.peek() {
            if g.key < key {
                out.push(*g);
                d.next();
            } else {
                break;
            }
        }
        let mut count = counts[code];
        let mut sum = sums[code];
        if let Some(g) = d.peek() {
            if g.key == key {
                count += g.count;
                sum += g.sum;
                d.next();
            }
        }
        if count > 0 {
            out.push(GroupAgg { key, count, sum });
        }
    }
    out.extend(d);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyrise_storage::MainPartition;
    use std::collections::BTreeMap;

    fn setup() -> (Attribute<u64>, Attribute<u64>, ValidityBitmap) {
        // keys:   main [1 2 1 3 2]  delta [2 4 1]
        // values: main [10 20 30 40 50] delta [60 70 80]
        let mut keys = Attribute::from_main(MainPartition::from_values(&[1u64, 2, 1, 3, 2]));
        let mut values = Attribute::from_main(MainPartition::from_values(&[10u64, 20, 30, 40, 50]));
        for (k, v) in [(2u64, 60u64), (4, 70), (1, 80)] {
            keys.append(k);
            values.append(v);
        }
        let validity = ValidityBitmap::all_valid(8);
        (keys, values, validity)
    }

    #[test]
    fn groups_span_main_and_delta_in_key_order() {
        let (keys, values, validity) = setup();
        let got = group_by_sum(&keys, &values, &validity);
        assert_eq!(
            got,
            vec![
                GroupAgg {
                    key: 1,
                    count: 3,
                    sum: 120
                }, // 10+30+80
                GroupAgg {
                    key: 2,
                    count: 3,
                    sum: 130
                }, // 20+50+60
                GroupAgg {
                    key: 3,
                    count: 1,
                    sum: 40
                },
                GroupAgg {
                    key: 4,
                    count: 1,
                    sum: 70
                }, // delta-only key
            ]
        );
    }

    #[test]
    fn validity_filters_groups() {
        let (keys, values, mut validity) = setup();
        validity.invalidate(3); // the only key=3 row
        validity.invalidate(7); // the delta key=1 row
        let got = group_by_sum(&keys, &values, &validity);
        assert_eq!(
            got,
            vec![
                GroupAgg {
                    key: 1,
                    count: 2,
                    sum: 40
                },
                GroupAgg {
                    key: 2,
                    count: 3,
                    sum: 130
                },
                GroupAgg {
                    key: 4,
                    count: 1,
                    sum: 70
                },
            ]
        );
    }

    #[test]
    fn matches_btreemap_reference_on_random_data() {
        let mut x = 0xABCDEFu64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let main_n = 5_000usize;
        let key_vals: Vec<u64> = (0..main_n).map(|_| next() % 97).collect();
        let val_vals: Vec<u64> = (0..main_n).map(|_| next() % 1000).collect();
        let mut keys = Attribute::from_main(MainPartition::from_values(&key_vals));
        let mut values = Attribute::from_main(MainPartition::from_values(&val_vals));
        let mut all: Vec<(u64, u64)> = key_vals
            .iter()
            .copied()
            .zip(val_vals.iter().copied())
            .collect();
        for _ in 0..1_000 {
            let k = next() % 140; // delta introduces new keys
            let v = next() % 1000;
            keys.append(k);
            values.append(v);
            all.push((k, v));
        }
        let mut validity = ValidityBitmap::all_valid(all.len());
        for i in (0..all.len()).step_by(7) {
            validity.invalidate(i);
        }

        let mut reference: BTreeMap<u64, (u64, u128)> = BTreeMap::new();
        for (i, (k, v)) in all.iter().enumerate() {
            if validity.is_valid(i) {
                let e = reference.entry(*k).or_default();
                e.0 += 1;
                e.1 += *v as u128;
            }
        }
        let got = group_by_sum(&keys, &values, &validity);
        let want: Vec<GroupAgg<u64>> = reference
            .into_iter()
            .map(|(key, (count, sum))| GroupAgg { key, count, sum })
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_all_invalid() {
        let keys: Attribute<u64> = Attribute::empty();
        let values: Attribute<u64> = Attribute::empty();
        let validity = ValidityBitmap::new();
        assert!(group_by_sum(&keys, &values, &validity).is_empty());

        let (keys, values, mut validity) = setup();
        for i in 0..8 {
            validity.invalidate(i);
        }
        assert!(group_by_sum(&keys, &values, &validity).is_empty());
    }
}

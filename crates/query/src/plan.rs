//! The logical query: a typed builder that compiles conjunctive predicates
//! into value-interval form, ready for dictionary value-id pushdown.
//!
//! A [`Query`] describes *what* to compute — a conjunction of per-column
//! predicates plus one output action (matching rows, a projection, or an
//! aggregate). It says nothing about *where* the data lives: the same query
//! value runs unchanged against every backend that implements
//! [`Executor`] (an [`Attribute`](hyrise_storage::Attribute),
//! a [`TableSnapshot`](hyrise_core::TableSnapshot), an
//! [`OnlineTable`](hyrise_core::OnlineTable), a
//! [`ShardedTable`](hyrise_core::shard::ShardedTable), or a heterogeneous
//! [`Table`](hyrise_storage::Table)).
//!
//! Predicates are *compiled*, not interpreted: `eq(v)` and `between(a, b)`
//! both normalize to a [`CompiledPredicate`] — an inclusive value interval
//! per column. At execution time each backend rewrites the interval against
//! its main partition's dictionary
//! ([`Dictionary::value_id_range`](hyrise_storage::Dictionary::value_id_range))
//! and scans the bit-packed codes entirely in value-id space; only the
//! small, unsorted delta tail falls back to value comparisons. That is the
//! paper's compressed-scan discipline (Section 3) packaged as an API.

use crate::exec::{Executor, Output};

/// One column's compiled predicate: the inclusive value interval
/// `[lo, hi]`. Equality is the collapsed interval `lo == hi`; an inverted
/// interval (`lo > hi`) matches nothing. At execution time the interval is
/// rewritten per main partition into a dictionary value-id range, so the
/// compressed scan never decodes a tuple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompiledPredicate<V> {
    /// The column the interval constrains.
    pub col: usize,
    /// Inclusive lower bound.
    pub lo: V,
    /// Inclusive upper bound.
    pub hi: V,
}

/// The query's output action (what [`Query::run`] returns).
///
/// Public so out-of-process callers (the network front-end) can serialize a
/// plan: a `Query` is fully described by its predicates, its action, and
/// its thread hint, and [`Query::from_parts`] rebuilds it from exactly
/// those pieces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Matching row ids (the default).
    Rows,
    /// Materialized values of the given columns for matching rows.
    Project(Vec<usize>),
    /// Number of matching rows.
    Count,
    /// Sum of the 64-bit projections of a column over matching rows.
    Sum(usize),
    /// Min and max of a column over matching rows.
    MinMax(usize),
}

/// A typed logical query: conjunctive predicates + one output action.
///
/// Build with [`Query::scan`], add predicates with [`Query::eq`] /
/// [`Query::between`] (switching columns via [`Query::and`]), pick an
/// output with [`Query::project`] / [`Query::sum`] / [`Query::min_max`] /
/// [`Query::count`] (default: matching rows), then [`Query::run`] it
/// against any executor. The query is a plain value — build once, run
/// against many backends.
///
/// ```
/// use hyrise_query::Query;
/// use hyrise_storage::{Attribute, MainPartition};
///
/// let mut attr = Attribute::from_main(MainPartition::from_values(&[10u64, 20, 30, 20]));
/// attr.append(20); // lands in the delta
///
/// let rows = Query::scan(0).eq(20).run(&attr).into_rows();
/// assert_eq!(rows, vec![1, 3, 4]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Query<V> {
    preds: Vec<CompiledPredicate<V>>,
    /// Column targeted by the next `eq` / `between`.
    cur_col: usize,
    action: Action,
    threads: usize,
}

impl<V: Copy> Query<V> {
    /// Start a query whose first predicate (if any) targets `col`. With no
    /// predicate attached, the query selects every visible row.
    ///
    /// ```
    /// use hyrise_query::Query;
    /// use hyrise_core::OnlineTable;
    ///
    /// let t = OnlineTable::<u64>::new(2);
    /// t.insert_row(&[1, 10]);
    /// t.insert_row(&[2, 20]);
    /// assert_eq!(Query::scan(0).count().run(&t).count(), 2);
    /// ```
    pub fn scan(col: usize) -> Self {
        Self {
            preds: Vec::new(),
            cur_col: col,
            action: Action::Rows,
            threads: 1,
        }
    }

    /// Constrain the current column to equal `v` (compiled to the collapsed
    /// interval `[v, v]`; on the main partition this is one dictionary
    /// binary search plus a packed-code equality scan).
    ///
    /// ```
    /// use hyrise_query::Query;
    /// use hyrise_core::OnlineTable;
    ///
    /// let t = OnlineTable::<u64>::new(1);
    /// for v in [5u64, 7, 5] {
    ///     t.insert_row(&[v]);
    /// }
    /// assert_eq!(Query::scan(0).eq(5).run(&t).into_rows(), vec![0, 2]);
    /// ```
    pub fn eq(self, v: V) -> Self {
        self.between(v, v)
    }

    /// Constrain the current column to the inclusive range `[lo, hi]`
    /// (order-preserving dictionary codes make this a value-id range scan
    /// on the main partition). An inverted range matches nothing.
    ///
    /// ```
    /// use hyrise_query::Query;
    /// use hyrise_core::OnlineTable;
    ///
    /// let t = OnlineTable::<u64>::new(1);
    /// for v in [5u64, 7, 9, 11] {
    ///     t.insert_row(&[v]);
    /// }
    /// assert_eq!(Query::scan(0).between(6, 10).run(&t).into_rows(), vec![1, 2]);
    /// ```
    pub fn between(mut self, lo: V, hi: V) -> Self {
        self.preds.push(CompiledPredicate {
            col: self.cur_col,
            lo,
            hi,
        });
        self
    }

    /// Target `col` with the next predicate — the conjunction connective:
    /// `Query::scan(0).eq(a).and(1).between(lo, hi)` selects rows matching
    /// *both* predicates.
    ///
    /// ```
    /// use hyrise_query::Query;
    /// use hyrise_core::OnlineTable;
    ///
    /// let t = OnlineTable::<u64>::new(2);
    /// t.insert_row(&[1, 10]);
    /// t.insert_row(&[1, 99]);
    /// t.insert_row(&[2, 10]);
    /// let rows = Query::scan(0).eq(1).and(1).eq(10).run(&t).into_rows();
    /// assert_eq!(rows, vec![0]);
    /// ```
    pub fn and(mut self, col: usize) -> Self {
        self.cur_col = col;
        self
    }

    /// Output the materialized values of `cols` (in the given order) for
    /// every matching row, instead of row ids.
    ///
    /// ```
    /// use hyrise_query::Query;
    /// use hyrise_core::OnlineTable;
    ///
    /// let t = OnlineTable::<u64>::new(2);
    /// t.insert_row(&[1, 10]);
    /// t.insert_row(&[2, 20]);
    /// let rows = Query::scan(0).eq(2).project(&[1, 0]).run(&t).into_projected();
    /// assert_eq!(rows, vec![vec![20, 2]]);
    /// ```
    pub fn project(mut self, cols: &[usize]) -> Self {
        self.action = Action::Project(cols.to_vec());
        self
    }

    /// Output the sum of the 64-bit projections of `col` over matching rows.
    ///
    /// ```
    /// use hyrise_query::Query;
    /// use hyrise_core::OnlineTable;
    ///
    /// let t = OnlineTable::<u64>::new(1);
    /// for v in [5u64, 7, 9] {
    ///     t.insert_row(&[v]);
    /// }
    /// assert_eq!(Query::scan(0).between(6, 10).sum(0).run(&t).sum(), 16);
    /// ```
    pub fn sum(mut self, col: usize) -> Self {
        self.action = Action::Sum(col);
        self
    }

    /// Output the minimum and maximum of `col` over matching rows (`None`
    /// when nothing matches).
    ///
    /// ```
    /// use hyrise_query::Query;
    /// use hyrise_core::OnlineTable;
    ///
    /// let t = OnlineTable::<u64>::new(1);
    /// for v in [5u64, 7, 9] {
    ///     t.insert_row(&[v]);
    /// }
    /// assert_eq!(Query::scan(0).min_max(0).run(&t).min_max(), Some((5, 9)));
    /// ```
    pub fn min_max(mut self, col: usize) -> Self {
        self.action = Action::MinMax(col);
        self
    }

    /// Output the number of matching rows.
    pub fn count(mut self) -> Self {
        self.action = Action::Count;
        self
    }

    /// Hint how many pool workers may claim morsels concurrently for
    /// *every* output shape — scans, conjunctions, counts, sums, min/max
    /// and projections, filtered or not. `1` (the default) runs serially
    /// on the calling thread; a larger hint splits the work into
    /// contiguous word-aligned morsels executed on the shared worker pool
    /// with results combined in morsel order, so the output is
    /// byte-identical regardless of the hint. Sharded executors clamp the
    /// per-shard hint so the shard fan-out times the morsel hint never
    /// oversubscribes the pool. Best-effort — executors are free to
    /// ignore it.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Execute against any backend. Equivalent to `exec.execute(self)`.
    ///
    /// ```
    /// use hyrise_query::Query;
    /// use hyrise_core::shard::ShardedTable;
    ///
    /// let t = ShardedTable::<u64>::builder().shards(2).columns(1).build().unwrap();
    /// t.insert_rows(&[[1u64], [2], [1]]).unwrap();
    /// let q = Query::scan(0).eq(1).count();
    /// assert_eq!(q.run(&t).count(), 2);
    /// ```
    pub fn run<E: Executor<V> + ?Sized>(&self, exec: &E) -> Output<V, E::RowId> {
        exec.execute(self)
    }

    /// The compiled conjunction, in the order predicates were added.
    pub fn predicates(&self) -> &[CompiledPredicate<V>] {
        &self.preds
    }

    /// The output action (executors and plan serializers match on it).
    pub fn action(&self) -> &Action {
        &self.action
    }

    /// Rebuild a query from its serialized parts: the compiled predicate
    /// conjunction, the output action, and the thread hint (clamped to
    /// ≥ 1). This is the deserialization counterpart of
    /// [`Query::predicates`] / [`Query::action`] / [`Query::threads`]:
    /// the rebuilt query executes identically to the original (the only
    /// state not carried over is the builder's current-column cursor,
    /// which affects future `eq`/`between` calls, not execution).
    ///
    /// ```
    /// use hyrise_query::{Action, CompiledPredicate, Query};
    ///
    /// let q = Query::scan(0).between(3u64, 9).count().with_threads(2);
    /// let rebuilt = Query::from_parts(
    ///     q.predicates().to_vec(),
    ///     q.action().clone(),
    ///     q.threads(),
    /// );
    /// assert_eq!(rebuilt.predicates(), q.predicates());
    /// assert_eq!(rebuilt.action(), q.action());
    /// assert_eq!(rebuilt.threads(), q.threads());
    /// ```
    pub fn from_parts(preds: Vec<CompiledPredicate<V>>, action: Action, threads: usize) -> Self {
        Self {
            preds,
            cur_col: 0,
            action,
            threads: threads.max(1),
        }
    }

    /// The executor thread hint (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A copy of the query with the morsel hint replaced — used by
    /// fan-out executors to clamp the per-shard hint so the shard fan-out
    /// times the hint stays within the worker pool.
    pub(crate) fn with_hint(&self, threads: usize) -> Self {
        let mut q = self.clone();
        q.threads = threads.max(1);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_compiles_predicates_in_order() {
        let q = Query::scan(2).eq(5u64).and(0).between(1, 9);
        assert_eq!(
            q.predicates(),
            &[
                CompiledPredicate {
                    col: 2,
                    lo: 5,
                    hi: 5
                },
                CompiledPredicate {
                    col: 0,
                    lo: 1,
                    hi: 9
                },
            ]
        );
        assert_eq!(q.threads(), 1);
        assert_eq!(*q.action(), Action::Rows);
    }

    #[test]
    fn actions_overwrite_and_threads_clamp() {
        let q = Query::<u64>::scan(0).count().sum(1).with_threads(0);
        assert_eq!(*q.action(), Action::Sum(1));
        assert_eq!(q.threads(), 1, "thread hint clamps to at least 1");
        let q = Query::<u64>::scan(0).project(&[1, 0]).min_max(2);
        assert_eq!(*q.action(), Action::MinMax(2));
    }
}

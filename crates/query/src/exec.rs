//! The unified execution engine: one [`Executor`] trait over every backend,
//! with a [`SelectionVector`] intermediate and dictionary value-id pushdown.
//!
//! Every backend reduces its columns to the same physical shape — a
//! dictionary-compressed main partition plus a short row-ordered list of
//! [`TailRegion`]s (bit-packed frozen/pending deltas, raw append-only tail
//! chunks) — and runs one engine over it:
//!
//! 1. **First predicate**: the value interval is rewritten against the
//!    main dictionary ([`Dictionary::value_id_range`]) and the bit-packed
//!    codes are scanned **entirely in value-id space** by the word-parallel
//!    SWAR kernels (no tuple is decoded); packed tail regions do the same
//!    against their local dictionaries, raw regions fall back to value
//!    comparisons — they are small by construction, the merge bounds them.
//! 2. **Further predicates**: when every predicate column shares the same
//!    main length, the conjunction is **fused** — each column produces a
//!    per-word match bitmask and the masks are ANDed before any row id is
//!    materialized. Otherwise (mid-merge snapshots with stepped columns)
//!    the engine refines the selection vector row by row: main rows compare
//!    their packed code against that column's value-id range (random
//!    access, still no decode), tail rows compare values.
//! 3. **Validity** filters last; the surviving [`SelectionVector`] feeds
//!    row output, projection, or aggregation.
//!
//! **Morsel-driven parallelism.** Every stage above is phrased per morsel:
//! [`Query::with_threads`] is a morsel-count hint that cuts the main
//! partition into contiguous 64-row-aligned ranges (see [`crate::morsel`])
//! claimed dynamically by the process-wide [`hyrise_core::Pool`] — the
//! engine spawns no threads of its own. Main-range kernels run the `_at`
//! SWAR entry points per morsel; the short tail regions are scanned
//! serially after the morsels; per-morsel results combine strictly in
//! morsel order, so the parallel output is byte-identical to a serial run
//! for every output shape.
//!
//! Implementations: [`TableSnapshot`] (the canonical engine),
//! [`OnlineTable`] (snapshot, then execute), [`ShardedTable`] (fan out one
//! engine per shard snapshot as pool tasks, merge partial results),
//! [`Attribute`] / [`AttributeExecutor`] (single column, optional
//! validity), and the heterogeneous [`Table`] (per-column typed dispatch
//! over [`AnyValue`] predicates).

use crate::morsel::{chunk_ranges, concat, morsel_ranges, parallel_map};
use crate::plan::{Action, CompiledPredicate, Query};
use hyrise_bitpack::{mask_count, mask_words, rows_from_mask};
use hyrise_core::shard::{ShardRowId, ShardedTable};
use hyrise_core::{OnlineTable, Pool, TableSnapshot};
#[cfg(doc)]
use hyrise_storage::Dictionary;
use hyrise_storage::{
    AnyValue, Attribute, Column, MainPartition, Table, TailRegion, ValidityBitmap, Value,
};

/// The positional intermediate between predicate evaluation and output:
/// matching row ids in ascending order. Operators refine it in place
/// (conjunction, validity) instead of materializing values between steps —
/// the late-materialization discipline of a column store.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SelectionVector {
    rows: Vec<usize>,
}

impl SelectionVector {
    /// Wrap an ascending row-id list.
    pub fn from_rows(rows: Vec<usize>) -> Self {
        Self { rows }
    }

    /// Selected rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The selected row ids, ascending.
    pub fn as_slice(&self) -> &[usize] {
        &self.rows
    }

    /// Iterate the selected row ids.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.rows.iter().copied()
    }

    /// Keep only rows satisfying `f` (conjunction / validity refinement).
    pub fn retain(&mut self, mut f: impl FnMut(usize) -> bool) {
        self.rows.retain(|&r| f(r));
    }

    /// Unwrap into the row-id vector.
    pub fn into_rows(self) -> Vec<usize> {
        self.rows
    }
}

/// A query's result: one variant per [`Query`] output action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Output<V, R> {
    /// Matching row ids (backend-specific id type — `usize` for single
    /// tables and snapshots, [`ShardRowId`] for sharded tables).
    Rows(Vec<R>),
    /// Materialized values of the projected columns, one `Vec` per row.
    Projected(Vec<Vec<V>>),
    /// Number of matching rows.
    Count(usize),
    /// Sum of 64-bit projections over matching rows.
    Sum(u128),
    /// Min and max over matching rows (`None` when nothing matched).
    MinMax(Option<(V, V)>),
}

impl<V, R> Output<V, R> {
    fn kind(&self) -> &'static str {
        match self {
            Output::Rows(_) => "rows",
            Output::Projected(_) => "projected",
            Output::Count(_) => "count",
            Output::Sum(_) => "sum",
            Output::MinMax(_) => "min_max",
        }
    }

    /// The matching row ids.
    ///
    /// # Panics
    /// If the query requested a different output.
    pub fn into_rows(self) -> Vec<R> {
        match self {
            Output::Rows(rows) => rows,
            other => panic!("query output is {}, not rows", other.kind()),
        }
    }

    /// The projected rows.
    ///
    /// # Panics
    /// If the query requested a different output.
    pub fn into_projected(self) -> Vec<Vec<V>> {
        match self {
            Output::Projected(rows) => rows,
            other => panic!("query output is {}, not a projection", other.kind()),
        }
    }

    /// The matching-row count.
    ///
    /// # Panics
    /// If the query requested a different output.
    pub fn count(&self) -> usize {
        match self {
            Output::Count(n) => *n,
            other => panic!("query output is {}, not a count", other.kind()),
        }
    }

    /// The sum.
    ///
    /// # Panics
    /// If the query requested a different output.
    pub fn sum(&self) -> u128 {
        match self {
            Output::Sum(s) => *s,
            other => panic!("query output is {}, not a sum", other.kind()),
        }
    }

    /// The min/max pair.
    ///
    /// # Panics
    /// If the query requested a different output.
    pub fn min_max(&self) -> Option<(V, V)>
    where
        V: Copy,
    {
        match self {
            Output::MinMax(mm) => *mm,
            other => panic!("query output is {}, not min/max", other.kind()),
        }
    }
}

/// A backend that can execute a [`Query`]. One implementation serves all
/// query shapes — scans, conjunctions, projections and aggregates all go
/// through [`Executor::execute`], so a new backend plugs into the whole
/// query surface at once.
pub trait Executor<V> {
    /// How this backend addresses rows.
    type RowId: Copy + Ord + Send + std::fmt::Debug;

    /// Run the query and return its output.
    fn execute(&self, q: &Query<V>) -> Output<V, Self::RowId>;
}

/// One column reduced to the engine's physical shape: a compressed main
/// partition plus tail regions in row order (the bit-packed frozen and
/// pending deltas, then the append-only tail's raw chunks; absent regions
/// contribute nothing).
pub(crate) struct ColView<'a, V: Value> {
    pub(crate) main: &'a MainPartition<V>,
    pub(crate) tails: Vec<TailRegion<'a, V>>,
}

impl<V: Value> ColView<'_, V> {
    fn len(&self) -> usize {
        self.main.len() + self.tails.iter().map(|t| t.len()).sum::<usize>()
    }

    /// Value of a tail row (row id relative to the end of main).
    fn tail_value(&self, i: usize) -> V {
        let mut off = i;
        for tail in &self.tails {
            if off < tail.len() {
                return tail.get(off);
            }
            off -= tail.len();
        }
        panic!("tail row {i} out of range")
    }

    /// Materialize one row (main rows decode through the dictionary).
    fn value(&self, row: usize) -> V {
        let nm = self.main.len();
        if row < nm {
            self.main.get(row)
        } else {
            self.tail_value(row - nm)
        }
    }
}

/// First-predicate scan: append all rows of `col` whose value lies in
/// `[lo, hi]`, ascending. Main rows are matched in value-id space (the
/// pushdown path, word-parallel); packed tail regions rewrite the bounds
/// into their local value-id space and run the same kernels; raw tail
/// chunks compare values.
pub(crate) fn scan_col_into<V: Value>(col: &ColView<'_, V>, lo: &V, hi: &V, out: &mut Vec<usize>) {
    if let Some(ids) = col.main.dictionary().value_id_range(lo, hi) {
        col.main.packed_codes().select_in_range_into(
            *ids.start() as u64,
            *ids.end() as u64,
            0,
            out,
        );
    }
    scan_tails_into(col, lo, hi, out);
}

/// Conjunction refinement: keep only selected rows whose `col` value lies
/// in `[lo, hi]`. Main rows compare their packed code against the value-id
/// range (random access, no decode); tail rows compare values.
pub(crate) fn refine_col<V: Value>(col: &ColView<'_, V>, lo: &V, hi: &V, rows: &mut Vec<usize>) {
    let ids = col.main.dictionary().value_id_range(lo, hi);
    let (id_lo, id_hi) = ids.map_or((1, 0), |r| (*r.start() as u64, *r.end() as u64));
    let nm = col.main.len();
    let codes = col.main.packed_codes();
    rows.retain(|&r| {
        if r < nm {
            let code = codes.get(r);
            code >= id_lo && code <= id_hi
        } else {
            let v = col.tail_value(r - nm);
            v >= *lo && v <= *hi
        }
    });
}

/// Apply one predicate's value-id range to a morsel's per-word match
/// masks over main rows `[start, end)` (`start` 64-aligned, masks are
/// morsel-local: bit 0 = row `start`): `and` refines an existing fill,
/// otherwise overwrite. A predicate matching no dictionary value zeroes
/// the whole mask.
fn mask_main_pred_at<V: Value>(
    col: &ColView<'_, V>,
    lo: &V,
    hi: &V,
    start: usize,
    end: usize,
    masks: &mut [u64],
    and: bool,
) {
    match col.main.dictionary().value_id_range(lo, hi) {
        Some(ids) => {
            let (id_lo, id_hi) = (*ids.start() as u64, *ids.end() as u64);
            if and {
                col.main
                    .packed_codes()
                    .and_range_mask_at(id_lo, id_hi, start, end, masks);
            } else {
                col.main
                    .packed_codes()
                    .fill_range_mask_at(id_lo, id_hi, start, end, masks);
            }
        }
        None => masks.fill(0),
    }
}

/// Can a conjunction run the fused mask pass? Only when every predicate
/// column's main partition has the same length — mid-incremental-merge
/// snapshots can hold columns whose mains differ (some already absorbed
/// the frozen delta), and a shared row mask would misalign.
fn fused_main_len<V: Value>(
    cols: &[ColView<'_, V>],
    preds: &[CompiledPredicate<V>],
) -> Option<usize> {
    let nm = cols[preds[0].col].main.len();
    preds[1..]
        .iter()
        .all(|p| cols[p.col].main.len() == nm)
        .then_some(nm)
}

/// Does tail row `i` (relative to the shared end of main) satisfy every
/// predicate?
fn tail_row_matches<V: Value>(
    cols: &[ColView<'_, V>],
    preds: &[CompiledPredicate<V>],
    i: usize,
) -> bool {
    preds.iter().all(|p| {
        let v = cols[p.col].tail_value(i);
        v >= p.lo && v <= p.hi
    })
}

/// Fused conjunction over one morsel of the main partitions (`start`
/// 64-aligned): build the first predicate's per-word match mask for
/// `[start, end)`, `AND` every further predicate's mask into it, and only
/// then materialize row ids — one dense bitset walk instead of a retain
/// pass per predicate. The returned masks are morsel-local (bit 0 = row
/// `start`).
fn fused_mask_at<V: Value>(
    cols: &[ColView<'_, V>],
    preds: &[CompiledPredicate<V>],
    start: usize,
    end: usize,
) -> Vec<u64> {
    let mut masks = vec![0u64; mask_words(end - start)];
    let (first, rest) = preds.split_first().expect("fused pass needs predicates");
    mask_main_pred_at(
        &cols[first.col],
        &first.lo,
        &first.hi,
        start,
        end,
        &mut masks,
        false,
    );
    for p in rest {
        mask_main_pred_at(&cols[p.col], &p.lo, &p.hi, start, end, &mut masks, true);
    }
    masks
}

/// Drop rows the validity bitmap marks deleted (no-op without a bitmap).
fn retain_valid(rows: &mut Vec<usize>, validity: Option<&ValidityBitmap>) {
    if let Some(v) = validity {
        rows.retain(|&r| v.is_valid(r));
    }
}

/// First-predicate scan of `col`'s tail regions only (global row ids start
/// at the end of main). Tails are short by construction — the merge bounds
/// them — so they run serially after the main morsels.
fn scan_tails_into<V: Value>(col: &ColView<'_, V>, lo: &V, hi: &V, out: &mut Vec<usize>) {
    let mut base = col.main.len();
    for tail in &col.tails {
        tail.select_in_range_into(lo, hi, base, out);
        base += tail.len();
    }
}

/// Count matching rows without materializing a selection vector (the
/// all-rows-valid fast path): a single predicate runs the popcount kernel
/// over each main morsel and each tail region; a conjunction popcounts the
/// fused per-word mask per morsel. Per-morsel counts add associatively, so
/// the hint cannot change the result.
fn count_cols<V: Value>(
    cols: &[ColView<'_, V>],
    n_rows: usize,
    preds: &[CompiledPredicate<V>],
    hint: usize,
) -> usize {
    if let [p] = preds {
        let col = &cols[p.col];
        let main = match col.main.dictionary().value_id_range(&p.lo, &p.hi) {
            Some(ids) => {
                let (id_lo, id_hi) = (*ids.start() as u64, *ids.end() as u64);
                let ranges = morsel_ranges(col.main.len(), hint);
                parallel_map(hint, ranges.len(), |i| {
                    let (s, e) = ranges[i];
                    col.main
                        .packed_codes()
                        .count_in_range_at(id_lo, id_hi, s, e)
                })
                .into_iter()
                .sum()
            }
            None => 0,
        };
        return main
            + col
                .tails
                .iter()
                .map(|t| t.count_in_range(&p.lo, &p.hi))
                .sum::<usize>();
    }
    match fused_main_len(cols, preds) {
        Some(nm) => {
            let ranges = morsel_ranges(nm, hint);
            let main: usize = parallel_map(hint, ranges.len(), |i| {
                let (s, e) = ranges[i];
                mask_count(&fused_mask_at(cols, preds, s, e))
            })
            .into_iter()
            .sum();
            main + (0..n_rows - nm)
                .filter(|&i| tail_row_matches(cols, preds, i))
                .count()
        }
        None => select_cols(cols, n_rows, preds, None, hint).len(),
    }
}

/// Evaluate the conjunction over homogeneous columns into a selection.
///
/// The main partition is processed per morsel (scan, fuse or refine, then
/// validity — each morsel emits its own ascending row ids); the tail
/// regions run serially afterwards. Concatenating the per-morsel vectors
/// in morsel order reproduces the serial ascending order exactly.
fn select_cols<V: Value>(
    cols: &[ColView<'_, V>],
    n_rows: usize,
    preds: &[CompiledPredicate<V>],
    validity: Option<&ValidityBitmap>,
    hint: usize,
) -> SelectionVector {
    let rows = match preds.split_first() {
        None => {
            // Enumeration, morselized for shape uniformity: each morsel
            // emits its valid rows; in-order concatenation is the
            // ascending row list.
            let ranges = morsel_ranges(n_rows, hint);
            concat(parallel_map(hint, ranges.len(), |i| {
                let (s, e) = ranges[i];
                let mut rows: Vec<usize> = (s..e).collect();
                retain_valid(&mut rows, validity);
                rows
            }))
        }
        Some((first, [])) => {
            let col = &cols[first.col];
            let ids = col.main.dictionary().value_id_range(&first.lo, &first.hi);
            let ranges = morsel_ranges(col.main.len(), hint);
            let mut parts = parallel_map(hint, ranges.len(), |i| {
                let (s, e) = ranges[i];
                let mut rows = Vec::new();
                if let Some(ids) = &ids {
                    col.main.packed_codes().select_in_range_into_at(
                        *ids.start() as u64,
                        *ids.end() as u64,
                        s,
                        e,
                        0,
                        &mut rows,
                    );
                }
                retain_valid(&mut rows, validity);
                rows
            });
            let mut tail_rows = Vec::new();
            scan_tails_into(col, &first.lo, &first.hi, &mut tail_rows);
            retain_valid(&mut tail_rows, validity);
            parts.push(tail_rows);
            concat(parts)
        }
        Some((first, rest)) => match fused_main_len(cols, preds) {
            Some(nm) => {
                // Fused pass per morsel: AND morsel-local per-word masks
                // across columns, then materialize once; tail rows check
                // all predicates fused.
                let ranges = morsel_ranges(nm, hint);
                let mut parts = parallel_map(hint, ranges.len(), |i| {
                    let (s, e) = ranges[i];
                    let masks = fused_mask_at(cols, preds, s, e);
                    let mut rows = Vec::new();
                    rows_from_mask(&masks, e - s, s, &mut rows);
                    retain_valid(&mut rows, validity);
                    rows
                });
                let mut tail_rows = Vec::new();
                for i in 0..n_rows - nm {
                    if tail_row_matches(cols, preds, i) {
                        tail_rows.push(nm + i);
                    }
                }
                retain_valid(&mut tail_rows, validity);
                parts.push(tail_rows);
                concat(parts)
            }
            None => {
                // Mid-merge stepped mains: scan the first column's main
                // per morsel, refine the other predicates row by row
                // within the morsel (random access works for any global
                // row id), then handle the first column's tails serially.
                let col = &cols[first.col];
                let ids = col.main.dictionary().value_id_range(&first.lo, &first.hi);
                let ranges = morsel_ranges(col.main.len(), hint);
                let mut parts = parallel_map(hint, ranges.len(), |i| {
                    let (s, e) = ranges[i];
                    let mut rows = Vec::new();
                    if let Some(ids) = &ids {
                        col.main.packed_codes().select_in_range_into_at(
                            *ids.start() as u64,
                            *ids.end() as u64,
                            s,
                            e,
                            0,
                            &mut rows,
                        );
                    }
                    for p in rest {
                        refine_col(&cols[p.col], &p.lo, &p.hi, &mut rows);
                    }
                    retain_valid(&mut rows, validity);
                    rows
                });
                let mut tail_rows = Vec::new();
                scan_tails_into(col, &first.lo, &first.hi, &mut tail_rows);
                for p in rest {
                    refine_col(&cols[p.col], &p.lo, &p.hi, &mut tail_rows);
                }
                retain_valid(&mut tail_rows, validity);
                parts.push(tail_rows);
                concat(parts)
            }
        },
    };
    SelectionVector::from_rows(rows)
}

fn fold_mm<V: Ord + Copy>(mm: Option<(V, V)>, v: V) -> Option<(V, V)> {
    Some(match mm {
        None => (v, v),
        Some((lo, hi)) => (lo.min(v), hi.max(v)),
    })
}

/// Sum rows `[start, end)` of `col` — a global row range that may span the
/// main partition (the packed cursor resumes at `start`) and tail regions;
/// a validity bitmap, when present, is checked per row.
fn sum_rows<V: Value>(
    col: &ColView<'_, V>,
    validity: Option<&ValidityBitmap>,
    start: usize,
    end: usize,
) -> u128 {
    let dict = col.main.dictionary();
    let nm = col.main.len();
    let mut acc: u128 = 0;
    if start < nm {
        let mut cur = col.main.packed_codes().cursor_at(start);
        for row in start..end.min(nm) {
            let code = cur.next_value();
            if validity.is_none_or(|val| val.is_valid(row)) {
                acc += dict.value_at(code as u32).to_u64_lossy() as u128;
            }
        }
    }
    let mut base = nm;
    for tail in &col.tails {
        let tail_end = base + tail.len();
        if start < tail_end && end > base {
            for row in start.max(base)..end.min(tail_end) {
                if validity.is_none_or(|val| val.is_valid(row)) {
                    acc += tail.get(row - base).to_u64_lossy() as u128;
                }
            }
        }
        base = tail_end;
    }
    acc
}

/// Full-column sum (no predicates): the bandwidth-bound analytical scan,
/// morselized over the whole row space (main and tails); per-morsel
/// partial sums add in morsel order.
fn sum_full<V: Value>(
    col: &ColView<'_, V>,
    validity: Option<&ValidityBitmap>,
    hint: usize,
) -> u128 {
    let ranges = morsel_ranges(col.len(), hint);
    parallel_map(hint, ranges.len(), |i| {
        let (s, e) = ranges[i];
        sum_rows(col, validity, s, e)
    })
    .into_iter()
    .sum()
}

/// One morsel's min/max partial: folded main *codes* (decoded later, once,
/// by the combiner) and folded tail values.
type MinMaxPartial<V> = (Option<(u64, u64)>, Option<(V, V)>);

/// Fold min/max over rows `[start, end)` of `col`: main rows fold *codes*
/// (decoded later, once, by the combiner), tail rows fold values.
fn min_max_rows<V: Value>(
    col: &ColView<'_, V>,
    validity: Option<&ValidityBitmap>,
    start: usize,
    end: usize,
) -> MinMaxPartial<V> {
    let nm = col.main.len();
    let mut code_mm: Option<(u64, u64)> = None;
    if start < nm {
        let mut cur = col.main.packed_codes().cursor_at(start);
        for row in start..end.min(nm) {
            let code = cur.next_value();
            if validity.is_none_or(|val| val.is_valid(row)) {
                code_mm = fold_mm(code_mm, code);
            }
        }
    }
    let mut val_mm: Option<(V, V)> = None;
    let mut base = nm;
    for tail in &col.tails {
        let tail_end = base + tail.len();
        if start < tail_end && end > base {
            for row in start.max(base)..end.min(tail_end) {
                if validity.is_none_or(|val| val.is_valid(row)) {
                    val_mm = fold_mm(val_mm, tail.get(row - base));
                }
            }
        }
        base = tail_end;
    }
    (code_mm, val_mm)
}

/// Full-column min/max (no predicates): each morsel folds main *codes* and
/// tail values; the combiner merges the partial extremes in morsel order
/// and decodes the two surviving codes once.
fn min_max_full<V: Value>(
    col: &ColView<'_, V>,
    validity: Option<&ValidityBitmap>,
    hint: usize,
) -> Option<(V, V)> {
    let ranges = morsel_ranges(col.len(), hint);
    let parts = parallel_map(hint, ranges.len(), |i| {
        let (s, e) = ranges[i];
        min_max_rows(col, validity, s, e)
    });
    let mut code_mm: Option<(u64, u64)> = None;
    let mut val_mm: Option<(V, V)> = None;
    for (c, v) in parts {
        if let Some((lo, hi)) = c {
            code_mm = fold_mm(fold_mm(code_mm, lo), hi);
        }
        if let Some((lo, hi)) = v {
            val_mm = fold_mm(fold_mm(val_mm, lo), hi);
        }
    }
    let dict = col.main.dictionary();
    let mut mm = code_mm.map(|(lo, hi)| (dict.value_at(lo as u32), dict.value_at(hi as u32)));
    if let Some((lo, hi)) = val_mm {
        mm = fold_mm(fold_mm(mm, lo), hi);
    }
    mm
}

/// The canonical engine over homogeneous column views — every typed
/// backend lands here.
fn execute_cols<V: Value>(
    cols: &[ColView<'_, V>],
    n_rows: usize,
    validity: Option<&ValidityBitmap>,
    q: &Query<V>,
) -> Output<V, usize> {
    let preds = q.predicates();
    let hint = q.threads();
    match q.action() {
        Action::Rows => Output::Rows(select_cols(cols, n_rows, preds, validity, hint).into_rows()),
        Action::Project(pcols) => {
            let sel = select_cols(cols, n_rows, preds, validity, hint);
            // Materialization is random access over the selection: split
            // it into plain chunks (no alignment needed) and concatenate
            // the per-chunk row vectors in order.
            let rows = sel.as_slice();
            let chunks = chunk_ranges(rows.len(), hint);
            Output::Projected(concat(parallel_map(hint, chunks.len(), |i| {
                let (s, e) = chunks[i];
                rows[s..e]
                    .iter()
                    .map(|&r| pcols.iter().map(|&c| cols[c].value(r)).collect())
                    .collect()
            })))
        }
        Action::Count => Output::Count(if preds.is_empty() {
            match validity {
                None => n_rows,
                // Bitmap and table agree on length (every table backend):
                // the maintained counter answers in O(1).
                Some(v) if v.len() == n_rows => v.valid_count(),
                // A caller-supplied bitmap may be longer than the attribute
                // (it only has to *cover* it) — count the covered rows.
                Some(v) => (0..n_rows).filter(|&r| v.is_valid(r)).count(),
            }
        } else if validity.is_none_or(|v| v.len() >= n_rows && v.valid_count() == v.len()) {
            // No invalid rows: count without materializing row ids.
            count_cols(cols, n_rows, preds, hint)
        } else {
            select_cols(cols, n_rows, preds, validity, hint).len()
        }),
        Action::Sum(c) => Output::Sum(if preds.is_empty() {
            sum_full(&cols[*c], validity, hint)
        } else {
            let col = &cols[*c];
            let sel = select_cols(cols, n_rows, preds, validity, hint);
            let rows = sel.as_slice();
            let chunks = chunk_ranges(rows.len(), hint);
            parallel_map(hint, chunks.len(), |i| {
                let (s, e) = chunks[i];
                rows[s..e]
                    .iter()
                    .map(|&r| col.value(r).to_u64_lossy() as u128)
                    .sum::<u128>()
            })
            .into_iter()
            .sum()
        }),
        Action::MinMax(c) => Output::MinMax(if preds.is_empty() {
            min_max_full(&cols[*c], validity, hint)
        } else {
            let col = &cols[*c];
            let sel = select_cols(cols, n_rows, preds, validity, hint);
            let rows = sel.as_slice();
            let chunks = chunk_ranges(rows.len(), hint);
            parallel_map(hint, chunks.len(), |i| {
                let (s, e) = chunks[i];
                rows[s..e]
                    .iter()
                    .fold(None, |mm, &r| fold_mm(mm, col.value(r)))
            })
            .into_iter()
            .flatten()
            .fold(None, |mm, (lo, hi)| fold_mm(fold_mm(mm, lo), hi))
        }),
    }
}

/// The snapshot engine body without the governor registration — the
/// sharded executor runs this once per shard under a single query-level
/// read guard.
fn execute_snapshot<V: Value>(snap: &TableSnapshot<V>, q: &Query<V>) -> Output<V, usize> {
    let views: Vec<ColView<'_, V>> = snap
        .cols()
        .iter()
        .map(|c| ColView {
            main: c.main(),
            tails: c.tails(),
        })
        .collect();
    execute_cols(&views, snap.row_count(), Some(snap.validity()), q)
}

impl<V: Value> Executor<V> for TableSnapshot<V> {
    type RowId = usize;

    /// The canonical engine: scan the snapshot's main partitions in
    /// value-id space, its frozen/active tails by value, entirely without
    /// the table lock.
    fn execute(&self, q: &Query<V>) -> Output<V, usize> {
        // Register this run with the resource governor's lock-free read
        // counters (two relaxed increments): the merge schedulers read
        // them as the read-pressure signal. Registration happens once per
        // *query* — a sharded fan-out or a many-morsel run still counts
        // as one read, so the governor's pressure signal tracks queries,
        // not the engine's internal parallelism.
        let _read = hyrise_core::governor::begin_read();
        execute_snapshot(self, q)
    }
}

impl<V: Value> Executor<V> for OnlineTable<V> {
    type RowId = usize;

    /// Snapshot-then-execute: one brief read lock to take a consistent
    /// [`TableSnapshot`], then the canonical engine runs lock-free —
    /// inserts and merges proceed underneath.
    fn execute(&self, q: &Query<V>) -> Output<V, usize> {
        self.snapshot().execute(q)
    }
}

impl<V: Value> Executor<V> for Attribute<V> {
    type RowId = usize;

    /// Single-column engine over main + delta; every row is visible (an
    /// [`Attribute`] carries no validity — see [`AttributeExecutor`] for
    /// the validity-aware view). Column index 0 addresses the attribute.
    fn execute(&self, q: &Query<V>) -> Output<V, usize> {
        AttributeExecutor::new(self).execute(q)
    }
}

/// An [`Attribute`] paired with an optional table-level [`ValidityBitmap`]
/// — the executor for validity-aware single-column queries.
pub struct AttributeExecutor<'a, V: Value> {
    attr: &'a Attribute<V>,
    validity: Option<&'a ValidityBitmap>,
}

impl<'a, V: Value> AttributeExecutor<'a, V> {
    /// Every row visible.
    pub fn new(attr: &'a Attribute<V>) -> Self {
        Self {
            attr,
            validity: None,
        }
    }

    /// Filter by `validity` (must cover the attribute's rows).
    pub fn with_validity(attr: &'a Attribute<V>, validity: &'a ValidityBitmap) -> Self {
        Self {
            attr,
            validity: Some(validity),
        }
    }
}

impl<V: Value> Executor<V> for AttributeExecutor<'_, V> {
    type RowId = usize;

    fn execute(&self, q: &Query<V>) -> Output<V, usize> {
        let _read = hyrise_core::governor::begin_read();
        let views = [ColView {
            main: self.attr.main(),
            tails: vec![TailRegion::Raw(self.attr.delta().values())],
        }];
        execute_cols(&views, self.attr.len(), self.validity, q)
    }
}

impl<V: Value> Executor<V> for ShardedTable<V> {
    type RowId = ShardRowId;

    /// Fan-out + merge: the shard snapshots come from one **consistent
    /// cut** (no cross-shard write batch is half-visible — see
    /// [`ShardedTable::consistent_snapshots`]), the canonical engine runs
    /// once per shard as pool tasks (the calling thread claims shards
    /// too), and the partial results are stitched in shard order — rows
    /// map to global [`ShardRowId`]s, counts and sums add, min/max
    /// reduce.
    fn execute(&self, q: &Query<V>) -> Output<V, ShardRowId> {
        let _read = hyrise_core::governor::begin_read();
        let snaps = self.consistent_snapshots();
        // Oversubscription clamp: the morsel hint multiplies across the
        // shard fan-out, so divide the pool between the shards — an
        // 8-shard query with an 8-morsel hint on an 8-thread pool runs
        // each shard serially instead of queueing 64 tasks. The shard
        // fan-out itself is bounded by the pool inside `run_indexed`.
        let pool = Pool::global_for_queries();
        let per_shard = q.with_hint(
            q.threads()
                .min((pool.threads() / snaps.len().max(1)).max(1)),
        );
        let partials = parallel_map(snaps.len(), snaps.len(), |i| {
            execute_snapshot(&snaps[i], &per_shard)
        });
        match q.action() {
            Action::Rows => Output::Rows(
                partials
                    .into_iter()
                    .enumerate()
                    .flat_map(|(shard, p)| {
                        p.into_rows()
                            .into_iter()
                            .map(move |row| ShardRowId { shard, row })
                    })
                    .collect(),
            ),
            Action::Project(_) => Output::Projected(
                partials
                    .into_iter()
                    .flat_map(|p| p.into_projected())
                    .collect(),
            ),
            Action::Count => Output::Count(partials.iter().map(|p| p.count()).sum()),
            Action::Sum(_) => Output::Sum(partials.iter().map(|p| p.sum()).sum()),
            Action::MinMax(_) => Output::MinMax(
                partials
                    .iter()
                    .filter_map(|p| p.min_max())
                    .reduce(|(alo, ahi), (blo, bhi)| (alo.min(blo), ahi.max(bhi))),
            ),
        }
    }
}

fn attr_view<V: Value>(a: &Attribute<V>) -> ColView<'_, V> {
    ColView {
        main: a.main(),
        tails: vec![TailRegion::Raw(a.delta().values())],
    }
}

/// Apply one predicate to a heterogeneous table column: `first == true`
/// scans into `rows`, otherwise refines `rows` in place.
///
/// # Panics
/// If the predicate bounds' type does not match the column's type.
fn apply_table_pred(
    table: &Table,
    p: &CompiledPredicate<AnyValue>,
    first: bool,
    rows: &mut Vec<usize>,
) {
    macro_rules! typed {
        ($attr:expr, $lo:expr, $hi:expr) => {{
            let view = attr_view($attr);
            if first {
                scan_col_into(&view, $lo, $hi, rows);
            } else {
                refine_col(&view, $lo, $hi, rows);
            }
        }};
    }
    match (table.column(p.col), &p.lo, &p.hi) {
        (Column::U32(a), AnyValue::U32(lo), AnyValue::U32(hi)) => typed!(a, lo, hi),
        (Column::U64(a), AnyValue::U64(lo), AnyValue::U64(hi)) => typed!(a, lo, hi),
        (Column::V16(a), AnyValue::V16(lo), AnyValue::V16(hi)) => typed!(a, lo, hi),
        (col, lo, hi) => panic!(
            "predicate bounds {lo:?}..={hi:?} on column {} must be {}",
            p.col,
            col.column_type()
        ),
    }
}

impl Executor<AnyValue> for Table {
    type RowId = usize;

    /// Heterogeneous engine: each predicate dispatches to its column's
    /// concrete type (the same typed value-id kernels as everywhere else),
    /// then output materializes through [`AnyValue`].
    ///
    /// # Panics
    /// If a predicate's value type does not match its column's type, or a
    /// column index is out of range.
    fn execute(&self, q: &Query<AnyValue>) -> Output<AnyValue, usize> {
        let _read = hyrise_core::governor::begin_read();
        let preds = q.predicates();
        // Predicate-free aggregates need no selection vector: dispatch to
        // the typed bulk kernels on the aggregated column.
        if preds.is_empty() {
            match q.action() {
                Action::Count => return Output::Count(self.valid_row_count()),
                Action::Sum(c) => {
                    let validity = Some(self.validity());
                    return Output::Sum(match self.column(*c) {
                        Column::U32(a) => sum_full(&attr_view(a), validity, q.threads()),
                        Column::U64(a) => sum_full(&attr_view(a), validity, q.threads()),
                        Column::V16(a) => sum_full(&attr_view(a), validity, q.threads()),
                    });
                }
                Action::MinMax(c) => {
                    let validity = Some(self.validity());
                    return Output::MinMax(match self.column(*c) {
                        Column::U32(a) => min_max_full(&attr_view(a), validity, q.threads())
                            .map(|(lo, hi)| (AnyValue::U32(lo), AnyValue::U32(hi))),
                        Column::U64(a) => min_max_full(&attr_view(a), validity, q.threads())
                            .map(|(lo, hi)| (AnyValue::U64(lo), AnyValue::U64(hi))),
                        Column::V16(a) => min_max_full(&attr_view(a), validity, q.threads())
                            .map(|(lo, hi)| (AnyValue::V16(lo), AnyValue::V16(hi))),
                    });
                }
                Action::Rows | Action::Project(_) => {}
            }
        }
        let mut rows: Vec<usize> = match preds.split_first() {
            None => (0..self.row_count()).collect(),
            Some((first, rest)) => {
                let mut rows = Vec::new();
                apply_table_pred(self, first, true, &mut rows);
                for p in rest {
                    apply_table_pred(self, p, false, &mut rows);
                }
                rows
            }
        };
        rows.retain(|&r| self.is_valid(r));
        match q.action() {
            Action::Rows => Output::Rows(rows),
            Action::Project(pcols) => Output::Projected(
                rows.iter()
                    .map(|&r| pcols.iter().map(|&c| self.column(c).get(r)).collect())
                    .collect(),
            ),
            Action::Count => Output::Count(rows.len()),
            Action::Sum(c) => Output::Sum(
                rows.iter()
                    .map(|&r| self.column(*c).get(r).to_u64_lossy() as u128)
                    .sum(),
            ),
            Action::MinMax(c) => Output::MinMax(
                rows.iter()
                    .fold(None, |mm, &r| fold_mm(mm, self.column(*c).get(r))),
            ),
        }
    }
}

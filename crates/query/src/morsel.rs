//! Morsel partitioning and the parallel-for bridge to the shared worker
//! pool.
//!
//! The execution engine never spawns threads of its own: every parallel
//! stage is phrased as "run this closure for morsel index `i`" and handed
//! to the process-wide [`Pool`] via [`parallel_map`]. Three properties make
//! the result byte-identical to a serial run:
//!
//! * **Contiguous, word-aligned morsels.** [`morsel_ranges`] cuts the row
//!   space into contiguous ranges whose boundaries are multiples of 64
//!   rows. 64 rows occupy exactly `bits` packed words for every code width
//!   `1..=64`, so a morsel boundary is word-aligned in both the packed
//!   code stream and the dense row-mask space — the SWAR kernels never
//!   straddle a seam and every word of output belongs to exactly one
//!   morsel.
//! * **Per-index result slots.** Each morsel writes its result into its
//!   own slot; nothing is shared between morsels while they run.
//! * **In-order combine.** The caller combines slots strictly in morsel
//!   order (masks OR in morsel order, row ids concatenate in order,
//!   aggregates reduce associatively), so scheduling order never leaks
//!   into the output.
//!
//! A width (or hint) of `1` short-circuits to an inline loop on the
//! calling thread — the serial path never touches the pool, queues
//! nothing, and is the baseline the `morsel_scan` bench gates against.

use hyrise_core::Pool;
use std::sync::OnceLock;

/// Upper bound on rows per morsel: large enough that per-task overhead
/// vanishes, small enough that a morsel's working set stays cache-friendly
/// and work-stealing can balance skew.
pub(crate) const MORSEL_ROWS: usize = 64 * 1024;

/// Cut `n` rows into contiguous morsels for a parallelism hint.
///
/// Every boundary except the final `n` is a multiple of 64 rows (see the
/// module docs for why). A hint of `0` or `1` yields a single morsel; a
/// larger hint yields `>= hint` morsels of at most [`MORSEL_ROWS`] rows so
/// each claimant has work, with the row count split as evenly as 64-row
/// granularity allows.
pub(crate) fn morsel_ranges(n: usize, hint: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    if hint <= 1 {
        return vec![(0, n)];
    }
    // Round the per-claimant share *down* to 64 rows (floor 64): the size
    // never exceeds n/hint, so at least `min(hint, ceil(n/64))` morsels
    // exist — every claimant has work whenever the row count permits.
    let per_claimant = (n / hint).max(1);
    let size = (per_claimant / 64)
        .max(1)
        .saturating_mul(64)
        .min(MORSEL_ROWS);
    let count = n.div_ceil(size);
    (0..count)
        .map(|i| (i * size, ((i + 1) * size).min(n)))
        .collect()
}

/// Split `n` items into at most `k` near-equal contiguous ranges (no
/// alignment requirement — used for random-access passes over an already
/// materialized selection vector).
pub(crate) fn chunk_ranges(n: usize, k: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let k = k.clamp(1, n);
    let size = n.div_ceil(k);
    (0..n.div_ceil(size))
        .map(|i| (i * size, ((i + 1) * size).min(n)))
        .collect()
}

/// Run `f(0..n)` with up to `width` concurrent claimants on the shared
/// pool and return the results in index order.
///
/// `width <= 1` (or a single item) runs inline on the calling thread and
/// never touches the pool. Otherwise the indices are claimed dynamically
/// by up to `width` pool workers *plus the calling thread* — the caller
/// participates in draining, so a pool task that itself calls
/// [`parallel_map`] (the sharded fan-out running morselized per-shard
/// engines) can never deadlock the pool, and the number of queued helper
/// tasks never exceeds `min(width, n, pool threads)`.
pub(crate) fn parallel_map<T, F>(width: usize, n: usize, f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    if width <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let slots: Vec<OnceLock<T>> = (0..n).map(|_| OnceLock::new()).collect();
    Pool::global_for_queries().run_indexed(n, width, &|i| {
        let _ = slots[i].set(f(i));
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every morsel fills its slot"))
        .collect()
}

/// Concatenate per-morsel row vectors in morsel order.
pub(crate) fn concat<T>(parts: Vec<Vec<T>>) -> Vec<T> {
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for part in parts {
        out.extend(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_morsel_for_serial_hints() {
        assert_eq!(morsel_ranges(1000, 0), vec![(0, 1000)]);
        assert_eq!(morsel_ranges(1000, 1), vec![(0, 1000)]);
        assert!(morsel_ranges(0, 4).is_empty());
    }

    #[test]
    fn boundaries_are_64_aligned_and_cover_the_row_space() {
        for n in [1usize, 63, 64, 65, 1000, 64 * 1024, 64 * 1024 + 1, 300_000] {
            for hint in 1..=8 {
                let ranges = morsel_ranges(n, hint);
                assert_eq!(ranges.first().unwrap().0, 0);
                assert_eq!(ranges.last().unwrap().1, n);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "contiguous");
                    assert_eq!(w[0].1 % 64, 0, "interior boundary 64-aligned");
                }
                if hint > 1 && n > 64 {
                    assert!(ranges.len() >= hint.min(n.div_ceil(64)));
                }
            }
        }
    }

    #[test]
    fn morsels_are_capped() {
        for (s, e) in morsel_ranges(10_000_000, 2) {
            assert!(e - s <= MORSEL_ROWS);
        }
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        for width in [1, 2, 4, 8] {
            let out = parallel_map(width, 37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunk_ranges_cover_without_alignment() {
        for n in [1usize, 7, 100] {
            for k in 1..=8 {
                let ranges = chunk_ranges(n, k);
                assert_eq!(ranges.first().unwrap().0, 0);
                assert_eq!(ranges.last().unwrap().1, n);
                assert!(ranges.len() <= k);
            }
        }
    }
}

//! Table-level read operators: validity-aware selection over dynamically
//! typed columns.

use hyrise_storage::{AnyValue, Table};

/// Row ids of *valid* rows whose column `col` (a `u64` column) equals `v`.
///
/// # Panics
/// If `col` is not a `u64` column.
pub fn table_scan_eq_u64(table: &Table, col: usize, v: u64) -> Vec<usize> {
    let attr = table
        .column(col)
        .as_u64()
        .expect("column must be u64 for table_scan_eq_u64");
    crate::scan::scan_eq(attr, &v)
        .into_iter()
        .filter(|&r| table.is_valid(r))
        .collect()
}

/// Generic predicate select: valid rows where `pred(row values)` holds.
/// Materializes each row — the slow generic path; typed scans beat it by
/// orders of magnitude, which is the point of the decomposed storage model.
pub fn table_select<F: Fn(&[AnyValue]) -> bool>(table: &Table, pred: F) -> Vec<usize> {
    let mut out = Vec::new();
    let mut row_buf: Vec<AnyValue> = Vec::with_capacity(table.num_columns());
    for r in 0..table.row_count() {
        if !table.is_valid(r) {
            continue;
        }
        row_buf.clear();
        for c in 0..table.num_columns() {
            row_buf.push(table.column(c).get(r));
        }
        if pred(&row_buf) {
            out.push(r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyrise_storage::{ColumnType, Schema};

    fn table() -> Table {
        let mut t = Table::new(
            "orders",
            Schema::new(vec![
                ("customer", ColumnType::U64),
                ("qty", ColumnType::U32),
            ]),
        );
        for (cust, qty) in [(7u64, 1u32), (8, 2), (7, 3), (9, 4), (7, 5)] {
            t.insert_row(&[AnyValue::U64(cust), AnyValue::U32(qty)])
                .unwrap();
        }
        t
    }

    #[test]
    fn eq_scan_filters_validity() {
        let mut t = table();
        assert_eq!(table_scan_eq_u64(&t, 0, 7), vec![0, 2, 4]);
        t.delete_row(2).unwrap();
        assert_eq!(table_scan_eq_u64(&t, 0, 7), vec![0, 4]);
    }

    #[test]
    fn eq_scan_after_update_sees_only_new_version() {
        let mut t = table();
        let new_row = t
            .update_row(0, &[AnyValue::U64(7), AnyValue::U32(10)])
            .unwrap();
        let rows = table_scan_eq_u64(&t, 0, 7);
        assert!(rows.contains(&new_row));
        assert!(!rows.contains(&0));
    }

    #[test]
    fn generic_select_multi_column_predicate() {
        let t = table();
        let rows = table_select(
            &t,
            |row| matches!((row[0], row[1]), (AnyValue::U64(7), AnyValue::U32(q)) if q >= 3),
        );
        assert_eq!(rows, vec![2, 4]);
    }

    #[test]
    #[should_panic(expected = "must be u64")]
    fn wrong_column_type_panics() {
        let t = table();
        table_scan_eq_u64(&t, 1, 1);
    }
}

//! Table-level read operators: validity-aware selection over dynamically
//! typed columns.
//!
//! The heterogeneous [`Table`] implements [`Executor`]
//! over [`AnyValue`] predicates, so the full [`Query`]
//! surface — equality, ranges, conjunctions, projections, aggregates —
//! works on any column type; each predicate dispatches to its column's
//! concrete type and runs the same value-id kernels as the typed backends.

use hyrise_storage::{AnyValue, Table};

/// Generic predicate select: valid rows where `pred(row values)` holds.
/// Materializes each row — the slow generic path; typed scans beat it by
/// orders of magnitude, which is the point of the decomposed storage model.
pub fn table_select<F: Fn(&[AnyValue]) -> bool>(table: &Table, pred: F) -> Vec<usize> {
    let mut out = Vec::new();
    let mut row_buf: Vec<AnyValue> = Vec::with_capacity(table.num_columns());
    for r in 0..table.row_count() {
        if !table.is_valid(r) {
            continue;
        }
        row_buf.clear();
        for c in 0..table.num_columns() {
            row_buf.push(table.column(c).get(r));
        }
        if pred(&row_buf) {
            out.push(r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Query;
    use hyrise_storage::{ColumnType, Schema, Value, V16};

    fn table_scan_eq_u64(table: &Table, col: usize, v: u64) -> Vec<usize> {
        Query::scan(col).eq(AnyValue::U64(v)).run(table).into_rows()
    }

    fn table() -> Table {
        let mut t = Table::new(
            "orders",
            Schema::new(vec![
                ("customer", ColumnType::U64),
                ("qty", ColumnType::U32),
            ]),
        );
        for (cust, qty) in [(7u64, 1u32), (8, 2), (7, 3), (9, 4), (7, 5)] {
            t.insert_row(&[AnyValue::U64(cust), AnyValue::U32(qty)])
                .unwrap();
        }
        t
    }

    #[test]
    fn eq_scan_filters_validity() {
        let mut t = table();
        assert_eq!(table_scan_eq_u64(&t, 0, 7), vec![0, 2, 4]);
        t.delete_row(2).unwrap();
        assert_eq!(table_scan_eq_u64(&t, 0, 7), vec![0, 4]);
    }

    #[test]
    fn eq_scan_after_update_sees_only_new_version() {
        let mut t = table();
        let new_row = t
            .update_row(0, &[AnyValue::U64(7), AnyValue::U32(10)])
            .unwrap();
        let rows = table_scan_eq_u64(&t, 0, 7);
        assert!(rows.contains(&new_row));
        assert!(!rows.contains(&0));
    }

    #[test]
    fn any_value_predicates_on_non_u64_columns() {
        // The u64-only limitation is gone: predicates dispatch on the
        // column's concrete type.
        let mut t = table();
        t.delete_row(1).unwrap();
        assert_eq!(
            Query::scan(1)
                .between(AnyValue::U32(2), AnyValue::U32(4))
                .run(&t)
                .into_rows(),
            vec![2, 3],
            "u32 range predicate (row 1 invalidated)"
        );
        // Conjunction across mixed column types.
        assert_eq!(
            Query::scan(0)
                .eq(AnyValue::U64(7))
                .and(1)
                .between(AnyValue::U32(3), AnyValue::U32(9))
                .run(&t)
                .into_rows(),
            vec![2, 4]
        );
        // V16 columns work too.
        let mut v16 = Table::new("docs", Schema::new(vec![("doc", ColumnType::V16)]));
        for seed in [3u64, 1, 2] {
            v16.insert_row(&[AnyValue::V16(V16::from_seed(seed))])
                .unwrap();
        }
        assert_eq!(
            Query::scan(0)
                .eq(AnyValue::V16(V16::from_seed(1)))
                .run(&v16)
                .into_rows(),
            vec![1]
        );
        // Aggregates over AnyValue columns.
        assert_eq!(
            Query::scan(0).eq(AnyValue::U64(7)).sum(1).run(&t).sum(),
            1 + 3 + 5,
        );
        assert_eq!(
            Query::scan(0).min_max(1).run(&t).min_max(),
            Some((AnyValue::U32(1), AnyValue::U32(5)))
        );
        assert_eq!(
            Query::scan(0)
                .eq(AnyValue::U64(9))
                .project(&[1, 0])
                .run(&t)
                .into_projected(),
            vec![vec![AnyValue::U32(4), AnyValue::U64(9)]]
        );
    }

    #[test]
    fn generic_select_multi_column_predicate() {
        let t = table();
        let rows = table_select(
            &t,
            |row| matches!((row[0], row[1]), (AnyValue::U64(7), AnyValue::U32(q)) if q >= 3),
        );
        assert_eq!(rows, vec![2, 4]);
    }

    #[test]
    #[should_panic(expected = "must be u32")]
    fn wrong_column_type_panics() {
        let t = table();
        // Column 1 is u32; a u64 predicate is a type error.
        table_scan_eq_u64(&t, 1, 1);
    }
}

//! Property test for the global consistent cut: fan-out aggregates over a
//! [`ShardedTable`] must never observe a torn cross-shard write batch.
//!
//! A single writer applies batches in a known global order; each batch's
//! rows scatter across shards, so a naive per-shard snapshot loop could
//! catch batch `k` applied on one shard but not yet on another. The
//! epoch-tagged cut (`consistent_snapshots`) retries/clamps until the
//! shard snapshots straddle no in-flight batch, so every observed
//! `(count, sum)` pair must equal the table state after some whole number
//! of batches — a prefix of the global insert order. With row values
//! `0, 1, 2, ...` any torn subset of size `N_k` that is not exactly the
//! first `N_k` rows has a strictly larger sum than the prefix, so the
//! pair check catches every tear.

use hyrise_core::shard::{ShardBy, ShardedTable};
use hyrise_query::Query;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};

/// One consistent fan-out read: `(visible rows, sum of column 1)` from a
/// single cut (both aggregates computed from the same snapshot set).
fn cut_read(table: &ShardedTable<u64>) -> (u128, u128) {
    let snaps = table.consistent_snapshots();
    let count: u128 = snaps
        .iter()
        .map(|s| Query::scan(0).count().run(s).count() as u128)
        .sum();
    let sum: u128 = snaps
        .iter()
        .map(|s| Query::scan(0).sum(1).run(s).sum())
        .sum();
    (count, sum)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Concurrent fan-out `count()`/`sum()` during cross-shard batched
    /// inserts: every observation is a prefix of the global insert order.
    #[test]
    fn fanout_aggregates_observe_only_whole_batch_prefixes(
        shards in 2usize..5,
        batch in 1usize..9,
        batches in 8usize..40,
        range_partitioned in any::<bool>(),
    ) {
        let total = batch * batches;
        let table = if range_partitioned {
            // Bounds split the 0..total global-id domain evenly.
            let bounds: Vec<u64> = (1..shards as u64)
                .map(|i| i * total as u64 / shards as u64)
                .collect();
            ShardedTable::<u64>::builder()
                .partitioning(ShardBy::Range(bounds))
                .columns(2)
                .build()
                .unwrap()
        } else {
            ShardedTable::<u64>::builder()
                .shards(shards)
                .columns(2)
                .build()
                .unwrap()
        };

        // Prefix oracle: after k whole batches, count = k * batch and
        // sum(col 1) = 0 + 1 + ... + (k * batch - 1) = n(n-1)/2.
        let prefix: HashSet<u128> = (0..=batches).map(|k| (k * batch) as u128).collect();
        let expected_sum = |n: u128| n * n.saturating_sub(1) / 2;

        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            let table = &table;
            let done = &done;
            s.spawn(move || {
                for k in 0..batches {
                    let rows: Vec<Vec<u64>> = (k * batch..(k + 1) * batch)
                        .map(|gid| vec![gid as u64, gid as u64])
                        .collect();
                    table.insert_rows(&rows).unwrap();
                }
                done.store(true, Ordering::Relaxed);
            });
            // Readers race the writer; each observation must sit exactly
            // on a batch boundary of the global order.
            let mut last = 0u128;
            while !done.load(Ordering::Relaxed) {
                let (count, sum) = cut_read(table);
                assert!(
                    prefix.contains(&count),
                    "count {count} is not a whole number of batches (batch {batch})"
                );
                assert_eq!(
                    sum,
                    expected_sum(count),
                    "cut of {count} rows is not the global-order prefix"
                );
                assert!(count >= last, "cuts are monotone ({last} -> {count})");
                last = count;
            }
        });

        // Quiesced: the final cut is the full prefix.
        let (count, sum) = cut_read(&table);
        prop_assert_eq!(count, total as u128);
        prop_assert_eq!(sum, expected_sum(total as u128));

        // And through the one-call fan-out path too.
        prop_assert_eq!(
            Query::scan(0).count().run(&table).count(),
            total
        );
        prop_assert_eq!(
            Query::scan(0).sum(1).run(&table).sum(),
            expected_sum(total as u128)
        );
    }
}

//! Sharded fan-out scans and aggregates through the unified [`Query`]
//! engine, checked against brute-force evaluation across merge states —
//! the coverage the removed legacy `sharded_*`/`snapshot_*` wrappers used
//! to carry, now pinned directly on the one remaining read path.

use hyrise_core::shard::{ShardRowId, ShardedTable};
use hyrise_query::Query;

/// 4 hash shards, 2 columns; column 1 = key * 3.
fn table(rows: u64) -> ShardedTable<u64> {
    let t = ShardedTable::builder()
        .shards(4)
        .columns(2)
        .build()
        .unwrap();
    t.insert_rows(
        &(0..rows)
            .map(|i| vec![i % 50, (i % 50) * 3])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    t
}

fn brute_eq(t: &ShardedTable<u64>, col: usize, v: u64) -> Vec<ShardRowId> {
    let mut out = Vec::new();
    for (shard, s) in t.shards().iter().enumerate() {
        for row in 0..s.row_count() {
            if s.is_valid(row) && s.get(col, row) == v {
                out.push(ShardRowId { shard, row });
            }
        }
    }
    out
}

fn scan_eq(t: &ShardedTable<u64>, col: usize, v: u64) -> Vec<ShardRowId> {
    Query::scan(col).eq(v).run(t).into_rows()
}

#[test]
fn sharded_scan_eq_matches_brute_force_across_merge_states() {
    let t = table(400);
    for probe in [0u64, 7, 49, 99] {
        assert_eq!(scan_eq(&t, 0, probe), brute_eq(&t, 0, probe));
    }
    // Merge two shards only: scans must span main, frozen and active.
    t.shard(0).merge(1, None).unwrap();
    t.shard(2).merge(1, None).unwrap();
    t.insert_rows(
        &(0..100u64)
            .map(|i| vec![i % 50, (i % 50) * 3])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    for probe in [0u64, 7, 49] {
        let mut got = scan_eq(&t, 0, probe);
        got.sort_unstable();
        let mut want = brute_eq(&t, 0, probe);
        want.sort_unstable();
        assert_eq!(got, want, "probe {probe}");
    }
    // Second column scans too.
    assert_eq!(scan_eq(&t, 1, 21).len(), brute_eq(&t, 1, 21).len());
}

#[test]
fn sharded_scan_range_matches_brute_force() {
    let t = table(300);
    t.shard(1).merge(1, None).unwrap();
    for (lo, hi) in [(0u64, 10u64), (25, 49), (40, 200), (60, 80)] {
        let got: std::collections::BTreeSet<ShardRowId> = Query::scan(0)
            .between(lo, hi)
            .run(&t)
            .into_rows()
            .into_iter()
            .collect();
        let want: std::collections::BTreeSet<ShardRowId> =
            (lo..=hi.min(49)).flat_map(|v| brute_eq(&t, 0, v)).collect();
        assert_eq!(got, want, "range {lo}..={hi}");
    }
}

#[test]
fn scans_filter_invalidated_rows() {
    let t = table(200);
    let hits = scan_eq(&t, 0, 13);
    assert!(!hits.is_empty());
    for id in &hits {
        t.delete_row(*id);
    }
    assert_eq!(scan_eq(&t, 0, 13), Vec::new());
    assert_eq!(
        Query::scan(0).count().run(&t).count(),
        200 - hits.len(),
        "valid-row count drops by the invalidated hits"
    );
}

#[test]
fn sharded_aggregates_match_brute_force() {
    let t = table(500);
    t.shard(3).merge(1, None).unwrap();
    let mut want_sum: u128 = 0;
    let mut want_mm: Option<(u64, u64)> = None;
    for s in t.shards() {
        for row in 0..s.row_count() {
            if s.is_valid(row) {
                let v = s.get(1, row);
                want_sum += v as u128;
                want_mm = Some(match want_mm {
                    None => (v, v),
                    Some((lo, hi)) => (lo.min(v), hi.max(v)),
                });
            }
        }
    }
    assert_eq!(Query::scan(0).sum(1).run(&t).sum(), want_sum);
    assert_eq!(Query::scan(0).min_max(1).run(&t).min_max(), want_mm);
    assert_eq!(
        Query::scan(0).min_max(1).run(&t).min_max(),
        Some((0, 49 * 3))
    );
}

#[test]
fn snapshot_queries_agree_with_sharded_fanout() {
    let t = table(300);
    t.shard(2).merge(1, None).unwrap();
    t.insert_rows(
        &(0..50u64)
            .map(|i| vec![i % 50, (i % 50) * 3])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let snaps = t.snapshots();
    let stitched: Vec<ShardRowId> = snaps
        .iter()
        .enumerate()
        .flat_map(|(shard, s)| {
            Query::scan(0)
                .eq(7u64)
                .run(s)
                .into_rows()
                .into_iter()
                .map(move |row| ShardRowId { shard, row })
        })
        .collect();
    assert_eq!(stitched, scan_eq(&t, 0, 7));
    let sum: u128 = snaps
        .iter()
        .map(|s| Query::scan(0).sum(1).run(s).sum())
        .sum();
    assert_eq!(sum, Query::scan(0).sum(1).run(&t).sum());
    let mm = snaps
        .iter()
        .filter_map(|s| Query::scan(0).min_max(1).run(s).min_max())
        .reduce(|(alo, ahi), (blo, bhi)| (alo.min(blo), ahi.max(bhi)));
    assert_eq!(mm, Query::scan(0).min_max(1).run(&t).min_max());
    assert_eq!(
        snaps
            .iter()
            .map(|s| Query::scan(0).between(5u64, 9).run(s).into_rows().len())
            .sum::<usize>(),
        Query::scan(0).between(5u64, 9).run(&t).into_rows().len()
    );
}

#[test]
fn empty_table_aggregates() {
    let t = ShardedTable::<u64>::builder()
        .shards(2)
        .columns(1)
        .build()
        .unwrap();
    assert_eq!(Query::scan(0).sum(0).run(&t).sum(), 0);
    assert_eq!(Query::scan(0).count().run(&t).count(), 0);
    assert_eq!(Query::scan(0).min_max(0).run(&t).min_max(), None);
    assert_eq!(scan_eq(&t, 0, 1), Vec::new());
    assert_eq!(
        Query::scan(0).between(0u64, 10).run(&t).into_rows(),
        Vec::new()
    );
}

#[test]
fn scans_are_stable_while_merges_run() {
    // The lock-free property: scans against snapshots keep returning
    // correct results while every shard merges concurrently.
    let t = std::sync::Arc::new(table(2_000));
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        let (t2, stop2) = (std::sync::Arc::clone(&t), std::sync::Arc::clone(&stop));
        s.spawn(move || {
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                t2.merge_all(1).unwrap();
                t2.insert_rows(
                    &(0..40u64)
                        .map(|i| vec![i % 50, (i % 50) * 3])
                        .collect::<Vec<_>>(),
                )
                .unwrap();
            }
        });
        // Invariant: every scan hit really holds the probed value.
        for _ in 0..200 {
            for id in scan_eq(&t, 0, 7) {
                assert_eq!(t.get(id, 0), 7);
                assert_eq!(t.get(id, 1), 21);
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
}

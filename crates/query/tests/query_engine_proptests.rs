//! The cross-backend query oracle: for **arbitrary conjunctive queries**
//! over **arbitrary insert/update/delete/merge interleavings**, the unified
//! [`Query`] engine must return exactly the rows and aggregates of a naive
//! row-at-a-time filter over a plain model — on every backend
//! ([`OnlineTable`], its [`TableSnapshot`], and 1–4-shard
//! [`ShardedTable`]s under both routing schemes).
//!
//! Merges interleave with the workload, so queries randomly hit every
//! physical split: merged main partitions (value-id pushdown), frozen
//! deltas, and active deltas (value-comparison fallback).

use hyrise_core::shard::{ShardBy, ShardRowId, ShardedTable};
use hyrise_core::OnlineTable;
use hyrise_query::Query;
use proptest::prelude::*;

const COLS: usize = 3;
/// Small value domain so predicates hit often and dictionaries stay dense.
const DOMAIN: u64 = 48;

/// Deterministic row payload: column `c` of seed `s` is a distinct mix.
fn row(seed: u64) -> Vec<u64> {
    (0..COLS as u64)
        .map(|c| seed.wrapping_mul(2 * c + 7).wrapping_add(c * 13) % DOMAIN)
        .collect()
}

/// One workload step, decoded from raw proptest integers.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert { seed: u64 },
    Update { target: u64, seed: u64 },
    Delete { target: u64 },
    Merge { shard: u64, single_too: bool },
}

fn decode(code: u8, a: u64, b: u64) -> Op {
    match code % 8 {
        0..=3 => Op::Insert { seed: a },
        4 => Op::Update { target: a, seed: b },
        5 => Op::Delete { target: a },
        _ => Op::Merge {
            shard: a,
            single_too: b.is_multiple_of(2),
        },
    }
}

/// The naive reference: every appended row's values + validity, in
/// insertion order (= the OnlineTable's global tuple ids).
struct Model {
    rows: Vec<(Vec<u64>, bool)>,
}

impl Model {
    /// Indices of valid rows matching the conjunction, row-at-a-time.
    fn matching(&self, preds: &[(usize, u64, u64)]) -> Vec<usize> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, (vals, valid))| {
                *valid
                    && preds
                        .iter()
                        .all(|&(c, lo, hi)| vals[c] >= lo && vals[c] <= hi)
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// Apply the op stream to the model, a single table and a sharded table.
/// Returns the sharded side's id per logical row.
fn apply_all(
    model: &mut Model,
    single: &OnlineTable<u64>,
    sharded: &ShardedTable<u64>,
    ops: &[(u8, u64, u64)],
) -> Vec<ShardRowId> {
    let mut shard_ids: Vec<ShardRowId> = Vec::new();
    for &(code, a, b) in ops {
        match decode(code, a, b) {
            Op::Insert { seed } => {
                let r = row(seed);
                let sid = single.insert_row(&r);
                assert_eq!(sid, model.rows.len(), "single-table ids = model indices");
                shard_ids.push(sharded.insert_row(&r));
                model.rows.push((r, true));
            }
            Op::Update { target, seed } => {
                if model.rows.is_empty() {
                    continue;
                }
                let i = (target as usize) % model.rows.len();
                let r = row(seed);
                single.update_row(i, &r);
                shard_ids.push(sharded.update_row(shard_ids[i], &r));
                model.rows[i].1 = false;
                model.rows.push((r, true));
            }
            Op::Delete { target } => {
                if model.rows.is_empty() {
                    continue;
                }
                let i = (target as usize) % model.rows.len();
                single.delete_row(i);
                sharded.delete_row(shard_ids[i]);
                model.rows[i].1 = false;
            }
            Op::Merge { shard, single_too } => {
                let _ = sharded
                    .shard((shard as usize) % sharded.num_shards())
                    .merge(1, None);
                if single_too {
                    let _ = single.merge(1, None);
                }
            }
        }
    }
    shard_ids
}

/// Build the conjunctive query: first predicate seeds the scan, the rest
/// chain through `.and(col)`.
fn build_query(preds: &[(usize, u64, u64)]) -> Query<u64> {
    let (first, rest) = preds.split_first().expect("at least one predicate");
    let mut q = Query::scan(first.0).between(first.1, first.2);
    for &(c, lo, hi) in rest {
        q = q.and(c).between(lo, hi);
    }
    q
}

/// Normalize raw proptest predicate triples: column into range, `eq` probes
/// collapse the interval (so dictionary-miss equality is exercised too).
fn normalize(preds: &[(u8, u64, u64)]) -> Vec<(usize, u64, u64)> {
    preds
        .iter()
        .map(|&(c, lo, span)| {
            let col = (c as usize) % COLS;
            let lo = lo % (DOMAIN + 8); // sometimes past the domain
            let hi = if span.is_multiple_of(3) {
                lo // equality probe
            } else {
                lo + span % 16
            };
            (col, lo, hi)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matches_naive_filter_on_every_backend(
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..140),
        raw_preds in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..4),
        num_shards in 1usize..5,
        range_routing in any::<bool>(),
        agg_col in 0usize..COLS,
    ) {
        let mut model = Model { rows: Vec::new() };
        let single = OnlineTable::<u64>::new(COLS);
        let sharded = if range_routing {
            // Bounds chosen so all shards see traffic from the DOMAIN keys.
            let step = DOMAIN / num_shards as u64;
            let bounds: Vec<u64> = (1..num_shards as u64).map(|i| i * step.max(1)).collect();
            ShardedTable::<u64>::builder()
                .partitioning(ShardBy::Range(bounds))
                .columns(COLS)
                .build()
                .unwrap()
        } else {
            ShardedTable::<u64>::builder()
                .shards(num_shards)
                .columns(COLS)
                .build()
                .unwrap()
        };
        let shard_ids = apply_all(&mut model, &single, &sharded, &ops);

        let preds = normalize(&raw_preds);
        let q = build_query(&preds);
        let expected = model.matching(&preds);

        // OnlineTable: engine row ids are the model's insertion indices.
        prop_assert_eq!(&q.run(&single).into_rows(), &expected);

        // TableSnapshot: the canonical engine agrees.
        let snap = single.snapshot();
        prop_assert_eq!(&q.run(&snap).into_rows(), &expected);

        // ShardedTable: identical row *set* under the (shard, row) mapping.
        let mut got: Vec<ShardRowId> = q.run(&sharded).into_rows();
        got.sort_unstable();
        let mut want: Vec<ShardRowId> = expected.iter().map(|&i| shard_ids[i]).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);

        // Aggregates: count / sum / min-max agree with the naive fold on
        // every backend.
        let want_count = expected.len();
        let want_sum: u128 = expected.iter().map(|&i| model.rows[i].0[agg_col] as u128).sum();
        let want_mm = expected
            .iter()
            .map(|&i| model.rows[i].0[agg_col])
            .fold(None, |mm, v| Some(match mm {
                None => (v, v),
                Some((lo, hi)) => (if v < lo { v } else { lo }, if v > hi { v } else { hi }),
            }));
        let count_q = q.clone().count();
        let sum_q = q.clone().sum(agg_col);
        let mm_q = q.clone().min_max(agg_col);
        prop_assert_eq!(count_q.run(&single).count(), want_count);
        prop_assert_eq!(count_q.run(&snap).count(), want_count);
        prop_assert_eq!(count_q.run(&sharded).count(), want_count);
        prop_assert_eq!(sum_q.run(&single).sum(), want_sum);
        prop_assert_eq!(sum_q.run(&snap).sum(), want_sum);
        prop_assert_eq!(sum_q.run(&sharded).sum(), want_sum);
        prop_assert_eq!(mm_q.run(&single).min_max(), want_mm);
        prop_assert_eq!(mm_q.run(&snap).min_max(), want_mm);
        prop_assert_eq!(mm_q.run(&sharded).min_max(), want_mm);

        // Projection materializes the naive rows (single-table order is
        // insertion order; sharded order is shard-stitched, compare sorted).
        let proj_q = q.clone().project(&[agg_col, 0]);
        let want_proj: Vec<Vec<u64>> = expected
            .iter()
            .map(|&i| vec![model.rows[i].0[agg_col], model.rows[i].0[0]])
            .collect();
        prop_assert_eq!(&proj_q.run(&single).into_projected(), &want_proj);
        prop_assert_eq!(&proj_q.run(&snap).into_projected(), &want_proj);
        let mut got_proj = proj_q.run(&sharded).into_projected();
        got_proj.sort_unstable();
        let mut want_proj = want_proj;
        want_proj.sort_unstable();
        prop_assert_eq!(got_proj, want_proj);
    }

    #[test]
    fn no_predicate_queries_see_exactly_the_valid_rows(
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..120),
        num_shards in 1usize..5,
    ) {
        let mut model = Model { rows: Vec::new() };
        let single = OnlineTable::<u64>::new(COLS);
        let sharded = ShardedTable::<u64>::builder()
            .shards(num_shards)
            .columns(COLS)
            .build()
            .unwrap();
        apply_all(&mut model, &single, &sharded, &ops);

        let valid: Vec<usize> = model
            .rows
            .iter()
            .enumerate()
            .filter(|(_, (_, v))| *v)
            .map(|(i, _)| i)
            .collect();
        let q = Query::scan(0);
        prop_assert_eq!(&q.run(&single).into_rows(), &valid);
        prop_assert_eq!(q.clone().count().run(&sharded).count(), valid.len());
        let want_sum: u128 = valid.iter().map(|&i| model.rows[i].0[1] as u128).sum();
        prop_assert_eq!(q.clone().sum(1).run(&single).sum(), want_sum);
        prop_assert_eq!(q.clone().sum(1).with_threads(4).run(&single).sum(), want_sum);
        prop_assert_eq!(q.sum(1).run(&sharded).sum(), want_sum);
    }
}

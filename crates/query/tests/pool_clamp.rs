//! The oversubscription clamp: an N-shard fan-out combined with an
//! N-morsel hint must never queue more pool tasks than the pool has
//! workers. The sharded executor divides the pool between the shards
//! (per-shard hint = `threads / shards`, at least 1) and `run_indexed`
//! bounds each fan-out's helper tasks by the pool size, so the peak
//! queue depth stays at or below `pool.threads()`.
//!
//! This test lives in its own binary: the peak-depth counter is a
//! property of the process-global pool, and no other test in this
//! process may touch it while we measure.

use hyrise_core::shard::ShardedTable;
use hyrise_core::Pool;
use hyrise_query::Query;

/// Wait until every queued task has been claimed — leftover helper tasks
/// from a previous parallel run would inflate the next peak reading.
fn settle(pool: &Pool) {
    while pool.queue_depth() > 0 {
        std::thread::yield_now();
    }
}

#[test]
fn shard_fanout_times_morsel_hint_stays_within_the_pool() {
    let t = ShardedTable::<u64>::builder()
        .shards(8)
        .columns(2)
        .build()
        .unwrap();
    let rows: Vec<[u64; 2]> = (0..40_000u64).map(|i| [i % 977, i]).collect();
    t.insert_rows(&rows).unwrap();

    let pool = Pool::global();
    let q = Query::scan(0).between(100u64, 700).count().with_threads(8);
    let expected = q.clone().with_threads(1).run(&t).count();

    for _ in 0..5 {
        settle(pool);
        pool.reset_peak_depth();
        let got = q.clone().run(&t).count();
        assert_eq!(got, expected, "clamped parallel run stays correct");
        assert!(
            pool.peak_queue_depth() <= pool.threads(),
            "8 shards x hint 8 queued {} tasks on a {}-thread pool",
            pool.peak_queue_depth(),
            pool.threads()
        );
    }

    // Every output shape obeys the clamp, not just counts.
    for q in [
        Query::scan(0).between(100u64, 700).with_threads(8),
        Query::scan(1).sum(1).with_threads(8),
        Query::scan(0).min_max(1).with_threads(8),
    ] {
        settle(pool);
        pool.reset_peak_depth();
        let _ = q.run(&t);
        assert!(pool.peak_queue_depth() <= pool.threads());
    }
}

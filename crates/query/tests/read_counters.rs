//! Every executor entry point registers with the resource governor's
//! process-wide read counters — the read-pressure signal the merge
//! schedulers adapt their grants to. Registration is **once per query**:
//! a sharded fan-out or a many-morsel parallel run still counts as one
//! read, so the signal tracks query arrival, not internal parallelism.
//! Counters are monotonic and global, so assertions are lower bounds
//! (other tests may run concurrently).

use hyrise_core::governor::read_load;
use hyrise_core::shard::ShardedTable;
use hyrise_core::OnlineTable;
use hyrise_query::{AttributeExecutor, Query};
use hyrise_storage::{AnyValue, Attribute, ColumnType, MainPartition, Schema, Table};

#[test]
fn executor_runs_bump_the_read_counters() {
    let t = OnlineTable::<u64>::new(1);
    for v in 0..100u64 {
        t.insert_row(&[v]);
    }
    let before = read_load();
    let _ = Query::scan(0).eq(5).run(&t).into_rows();
    let after = read_load();
    assert!(
        after.finished > before.finished,
        "snapshot engine run must register"
    );
    assert!(
        after.started >= after.finished,
        "started never lags finished"
    );

    // A sharded fan-out registers exactly once for the whole query — the
    // per-shard engine runs are internal parallelism, not read pressure.
    // (This test binary is the only user of the process-global counters,
    // so the count is exact.)
    let s = ShardedTable::<u64>::builder()
        .shards(3)
        .columns(1)
        .build()
        .unwrap();
    s.insert_rows(&(0..50u64).map(|i| [i]).collect::<Vec<_>>())
        .unwrap();
    let before = read_load();
    let _ = Query::scan(0).count().run(&s).count();
    let after = read_load();
    assert_eq!(
        after.finished,
        before.finished + 1,
        "sharded query registers once, not once per shard"
    );

    // The morsel hint doesn't multiply registrations either.
    let before = read_load();
    let _ = Query::scan(0).sum(0).with_threads(4).run(&t).sum();
    let after = read_load();
    assert_eq!(
        after.finished,
        before.finished + 1,
        "a many-morsel run registers once"
    );

    // Attribute and heterogeneous-table executors register too.
    let attr = Attribute::from_main(MainPartition::from_values(&[1u64, 2, 3]));
    let before = read_load();
    let _ = Query::scan(0).eq(2).run(&AttributeExecutor::new(&attr));
    let mut table = Table::new("t", Schema::new(vec![("a", ColumnType::U64)]));
    table.insert_row(&[AnyValue::U64(7)]).unwrap();
    let _ = Query::scan(0).eq(AnyValue::U64(7)).count().run(&table);
    let after = read_load();
    assert!(after.finished >= before.finished + 2);
}

//! The morsel-parallel oracle: for **arbitrary morsel hints** the engine
//! must be **byte-identical to its own serial run** — same row order, same
//! counts, sums, min/max and projections — on every backend
//! ([`OnlineTable`], its [`TableSnapshot`], and sharded tables), over
//! arbitrary insert/update/delete/merge interleavings. The hint only
//! changes *where* morsels execute (the shared worker pool), never *what*
//! the query returns: per-morsel results combine strictly in morsel order.
//!
//! Merges interleave with the workload, so parallel runs hit every
//! physical split — merged mains (value-id pushdown per morsel), frozen
//! deltas and active tails (serial value fallback after the morsels).

use hyrise_core::shard::{ShardBy, ShardedTable};
use hyrise_core::{OnlineTable, Pool};
use hyrise_query::Query;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const COLS: usize = 3;
/// Small value domain so predicates hit often and dictionaries stay dense.
const DOMAIN: u64 = 48;

fn row(seed: u64) -> Vec<u64> {
    (0..COLS as u64)
        .map(|c| seed.wrapping_mul(2 * c + 7).wrapping_add(c * 13) % DOMAIN)
        .collect()
}

/// Apply one op stream to both tables. Inserts come in small batches so
/// the row space grows past single-morsel sizes; updates and deletes
/// punch validity holes; merges move rows between the physical regions.
fn apply_all(single: &OnlineTable<u64>, sharded: &ShardedTable<u64>, ops: &[(u8, u64, u64)]) {
    let mut n_rows = 0usize;
    for &(code, a, b) in ops {
        match code % 8 {
            0..=3 => {
                for s in 0..(a % 24) + 1 {
                    let r = row(b.wrapping_add(s));
                    single.insert_row(&r);
                    sharded.insert_row(&r);
                    n_rows += 1;
                }
            }
            4 => {
                if n_rows > 0 {
                    // Update by global id on the single table; the sharded
                    // side inserts the same values (ids differ, outputs are
                    // compared per backend against its own serial run).
                    let r = row(b);
                    single.update_row(a as usize % n_rows, &r);
                    sharded.insert_row(&r);
                    n_rows += 1;
                }
            }
            5 => {
                if n_rows > 0 {
                    single.delete_row(a as usize % n_rows);
                }
            }
            _ => {
                let _ = sharded
                    .shard(a as usize % sharded.num_shards())
                    .merge(1, None);
                if b.is_multiple_of(2) {
                    let _ = single.merge(1, None);
                }
            }
        }
    }
}

/// The query shapes under test: rows, projection, count, sum, min/max —
/// with whatever conjunction `preds` encodes (possibly none).
fn shapes(preds: &[(usize, u64, u64)], agg_col: usize) -> Vec<Query<u64>> {
    let mut q = Query::scan(0);
    for (i, &(c, lo, hi)) in preds.iter().enumerate() {
        q = if i == 0 { Query::scan(c) } else { q.and(c) }.between(lo, hi);
    }
    vec![
        q.clone(),
        q.clone().project(&[agg_col, 0]),
        q.clone().count(),
        q.clone().sum(agg_col),
        q.min_max(agg_col),
    ]
}

fn normalize(preds: &[(u8, u64, u64)]) -> Vec<(usize, u64, u64)> {
    preds
        .iter()
        .map(|&(c, lo, span)| {
            let col = (c as usize) % COLS;
            let lo = lo % (DOMAIN + 8);
            let hi = if span.is_multiple_of(3) {
                lo
            } else {
                lo + span % 16
            };
            (col, lo, hi)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_morsel_hint_is_byte_identical_to_serial(
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..80),
        raw_preds in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..4),
        num_shards in 1usize..5,
        range_routing in any::<bool>(),
        agg_col in 0usize..COLS,
    ) {
        let single = OnlineTable::<u64>::new(COLS);
        let sharded = if range_routing {
            let step = (DOMAIN / num_shards as u64).max(1);
            let bounds: Vec<u64> = (1..num_shards as u64).map(|i| i * step).collect();
            ShardedTable::<u64>::builder()
                .partitioning(ShardBy::Range(bounds))
                .columns(COLS)
                .build()
                .unwrap()
        } else {
            ShardedTable::<u64>::builder()
                .shards(num_shards)
                .columns(COLS)
                .build()
                .unwrap()
        };
        apply_all(&single, &sharded, &ops);
        let snap = single.snapshot();

        for q in shapes(&normalize(&raw_preds), agg_col) {
            let serial_single = q.run(&single);
            let serial_snap = q.run(&snap);
            let serial_sharded = q.run(&sharded);
            for hint in 2..=8usize {
                let hq = q.clone().with_threads(hint);
                prop_assert_eq!(&hq.run(&single), &serial_single, "online, hint {}", hint);
                prop_assert_eq!(&hq.run(&snap), &serial_snap, "snapshot, hint {}", hint);
                prop_assert_eq!(&hq.run(&sharded), &serial_sharded, "sharded, hint {}", hint);
            }
        }
    }
}

/// Deterministic many-morsel workload: enough rows that every hint splits
/// the main partition into several morsels (and hits the 64K-row morsel
/// cap), with a delta tail and deleted rows on top.
#[test]
fn large_scans_split_into_many_morsels_and_stay_identical() {
    let t = OnlineTable::<u64>::new(2);
    let mut x = 0x9e3779b97f4a7c15u64;
    let mut rows = Vec::with_capacity(200_000);
    for _ in 0..200_000u32 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        rows.push([x % 1009, x % 65_537]);
    }
    for r in &rows {
        t.insert_row(r);
    }
    let _ = t.merge(1, None);
    // Tail past the merged main, plus validity holes.
    for r in rows.iter().take(3000) {
        t.insert_row(r);
    }
    for i in (0..200_000).step_by(97) {
        t.delete_row(i);
    }
    let snap = t.snapshot();

    let queries = vec![
        Query::scan(0).eq(500),
        Query::scan(0).between(100, 600),
        Query::scan(0).between(100, 600).and(1).between(0, 40_000),
        Query::scan(0).sum(1),
        Query::scan(0).between(200, 800).min_max(1),
        Query::scan(0).count(),
        Query::scan(0).eq(13).project(&[0, 1]),
    ];
    for q in queries {
        let serial = q.run(&snap);
        for hint in 2..=8usize {
            assert_eq!(q.clone().with_threads(hint).run(&snap), serial);
        }
    }
}

/// An owned pool drains queued work and joins on shutdown and on drop,
/// even with a parallel-for in flight from another thread.
#[test]
fn pool_shutdown_and_drop_do_not_hang_or_lose_work() {
    let pool = Arc::new(Pool::new(2));
    let hits = Arc::new(AtomicU64::new(0));
    for _ in 0..64 {
        let h = Arc::clone(&hits);
        pool.spawn(move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
    }
    let runner = {
        let pool = Arc::clone(&pool);
        let hits = Arc::clone(&hits);
        std::thread::spawn(move || {
            pool.run_indexed(256, 2, &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        })
    };
    runner.join().unwrap();
    pool.shutdown();
    assert_eq!(hits.load(Ordering::Relaxed), 64 + 256, "no task lost");
    assert_eq!(pool.queue_depth(), 0);
    drop(pool); // second shutdown via Drop is idempotent
}

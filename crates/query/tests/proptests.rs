//! Property tests: the query operators over a single [`Attribute`] must
//! agree with a brute-force evaluation over the materialized column, for
//! arbitrary main/delta splits and validity patterns.
//!
//! These drive the [`Query`] builder directly — the only read path since
//! the deprecated wrapper functions were removed (cross-backend coverage
//! over tables and shards lives in `query_engine_proptests.rs`).

use hyrise_query::{group_by_sum, AttributeExecutor, Query};
use hyrise_storage::{Attribute, MainPartition, ValidityBitmap};
use proptest::prelude::*;

fn attribute(main_vals: &[u64], delta_vals: &[u64]) -> Attribute<u64> {
    let mut a = if main_vals.is_empty() {
        Attribute::empty()
    } else {
        Attribute::from_main(MainPartition::from_values(main_vals))
    };
    for &v in delta_vals {
        a.append(v);
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scan_eq_equals_brute_force(
        main_vals in prop::collection::vec(0u64..50, 0..400),
        delta_vals in prop::collection::vec(0u64..60, 0..200),
        probe in 0u64..70,
    ) {
        let a = attribute(&main_vals, &delta_vals);
        let all: Vec<u64> = main_vals.iter().chain(&delta_vals).copied().collect();
        let want: Vec<usize> =
            all.iter().enumerate().filter(|(_, v)| **v == probe).map(|(i, _)| i).collect();
        let mut got = Query::scan(0).eq(probe).run(&a).into_rows();
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn scan_range_equals_brute_force(
        main_vals in prop::collection::vec(0u64..50, 0..400),
        delta_vals in prop::collection::vec(0u64..60, 0..200),
        lo in 0u64..70,
        span in 0u64..30,
    ) {
        let a = attribute(&main_vals, &delta_vals);
        let hi = lo + span;
        let all: Vec<u64> = main_vals.iter().chain(&delta_vals).copied().collect();
        let want: Vec<usize> = all
            .iter()
            .enumerate()
            .filter(|(_, v)| **v >= lo && **v <= hi)
            .map(|(i, _)| i)
            .collect();
        let mut got = Query::scan(0).between(lo, hi).run(&a).into_rows();
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn aggregates_respect_validity(
        main_vals in prop::collection::vec(0u64..1000, 0..300),
        delta_vals in prop::collection::vec(0u64..1000, 0..150),
        invalid in prop::collection::vec(any::<u16>(), 0..40),
        threads in 1usize..8,
    ) {
        let a = attribute(&main_vals, &delta_vals);
        let n = a.len();
        let mut validity = ValidityBitmap::all_valid(n);
        for i in invalid {
            if n > 0 {
                validity.invalidate(i as usize % n);
            }
        }
        let all: Vec<u64> = main_vals.iter().chain(&delta_vals).copied().collect();
        let want_sum: u128 = all
            .iter()
            .enumerate()
            .filter(|(i, _)| validity.is_valid(*i))
            .map(|(_, v)| *v as u128)
            .sum();
        let exec = AttributeExecutor::with_validity(&a, &validity);
        prop_assert_eq!(Query::scan(0).sum(0).run(&exec).sum(), want_sum);
        // The validity-free parallel sum covers all rows.
        let all_sum: u128 = all.iter().map(|v| *v as u128).sum();
        prop_assert_eq!(Query::scan(0).sum(0).with_threads(threads).run(&a).sum(), all_sum);

        let want_minmax = {
            let vals: Vec<u64> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| validity.is_valid(*i))
                .map(|(_, v)| *v)
                .collect();
            vals.iter().min().map(|min| (*min, *vals.iter().max().unwrap()))
        };
        prop_assert_eq!(Query::scan(0).min_max(0).run(&exec).min_max(), want_minmax);
    }

    #[test]
    fn group_by_equals_btreemap(
        main_pairs in prop::collection::vec((0u64..30, 0u64..100), 0..300),
        delta_pairs in prop::collection::vec((0u64..40, 0u64..100), 0..150),
    ) {
        let main_keys: Vec<u64> = main_pairs.iter().map(|(k, _)| *k).collect();
        let main_vals: Vec<u64> = main_pairs.iter().map(|(_, v)| *v).collect();
        let keys = attribute(&main_keys, &delta_pairs.iter().map(|(k, _)| *k).collect::<Vec<_>>());
        let values = attribute(&main_vals, &delta_pairs.iter().map(|(_, v)| *v).collect::<Vec<_>>());
        let validity = ValidityBitmap::all_valid(keys.len());

        let mut want: std::collections::BTreeMap<u64, (u64, u128)> = Default::default();
        for (k, v) in main_pairs.iter().chain(&delta_pairs) {
            let e = want.entry(*k).or_default();
            e.0 += 1;
            e.1 += *v as u128;
        }
        let got = group_by_sum(&keys, &values, &validity);
        prop_assert_eq!(got.len(), want.len());
        for (g, (k, (count, sum))) in got.iter().zip(want) {
            prop_assert_eq!(g.key, k);
            prop_assert_eq!(g.count, count);
            prop_assert_eq!(g.sum, sum);
        }
    }
}

//! Property tests: every query operator must agree with a brute-force
//! evaluation over the materialized column, for arbitrary main/delta splits
//! and validity patterns.
//!
//! These drive the *legacy wrapper* functions on purpose — they pin the
//! compatibility surface to the same oracle as the engine underneath (the
//! engine itself is exercised by `query_engine_proptests.rs`).
#![allow(deprecated)]

use hyrise_query::{group_by_sum, scan_eq, scan_range, sum_lossy, sum_lossy_parallel, MinMax};
use hyrise_storage::{Attribute, MainPartition, ValidityBitmap};
use proptest::prelude::*;

fn attribute(main_vals: &[u64], delta_vals: &[u64]) -> Attribute<u64> {
    let mut a = if main_vals.is_empty() {
        Attribute::empty()
    } else {
        Attribute::from_main(MainPartition::from_values(main_vals))
    };
    for &v in delta_vals {
        a.append(v);
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scan_eq_equals_brute_force(
        main_vals in prop::collection::vec(0u64..50, 0..400),
        delta_vals in prop::collection::vec(0u64..60, 0..200),
        probe in 0u64..70,
    ) {
        let a = attribute(&main_vals, &delta_vals);
        let all: Vec<u64> = main_vals.iter().chain(&delta_vals).copied().collect();
        let want: Vec<usize> =
            all.iter().enumerate().filter(|(_, v)| **v == probe).map(|(i, _)| i).collect();
        let mut got = scan_eq(&a, &probe);
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn scan_range_equals_brute_force(
        main_vals in prop::collection::vec(0u64..50, 0..400),
        delta_vals in prop::collection::vec(0u64..60, 0..200),
        lo in 0u64..70,
        span in 0u64..30,
    ) {
        let a = attribute(&main_vals, &delta_vals);
        let hi = lo + span;
        let all: Vec<u64> = main_vals.iter().chain(&delta_vals).copied().collect();
        let want: Vec<usize> = all
            .iter()
            .enumerate()
            .filter(|(_, v)| **v >= lo && **v <= hi)
            .map(|(i, _)| i)
            .collect();
        let mut got = scan_range(&a, lo..=hi);
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn aggregates_respect_validity(
        main_vals in prop::collection::vec(0u64..1000, 0..300),
        delta_vals in prop::collection::vec(0u64..1000, 0..150),
        invalid in prop::collection::vec(any::<u16>(), 0..40),
        threads in 1usize..8,
    ) {
        let a = attribute(&main_vals, &delta_vals);
        let n = a.len();
        let mut validity = ValidityBitmap::all_valid(n);
        for i in invalid {
            if n > 0 {
                validity.invalidate(i as usize % n);
            }
        }
        let all: Vec<u64> = main_vals.iter().chain(&delta_vals).copied().collect();
        let want_sum: u128 = all
            .iter()
            .enumerate()
            .filter(|(i, _)| validity.is_valid(*i))
            .map(|(_, v)| *v as u128)
            .sum();
        prop_assert_eq!(sum_lossy(&a, &validity), want_sum);
        // The parallel variant sums all rows (no validity filter).
        let all_sum: u128 = all.iter().map(|v| *v as u128).sum();
        prop_assert_eq!(sum_lossy_parallel(&a, threads), all_sum);

        let want_minmax = {
            let vals: Vec<u64> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| validity.is_valid(*i))
                .map(|(_, v)| *v)
                .collect();
            vals.iter().min().map(|min| MinMax { min: *min, max: *vals.iter().max().unwrap() })
        };
        prop_assert_eq!(MinMax::compute(&a, &validity), want_minmax);
    }

    #[test]
    fn group_by_equals_btreemap(
        main_pairs in prop::collection::vec((0u64..30, 0u64..100), 0..300),
        delta_pairs in prop::collection::vec((0u64..40, 0u64..100), 0..150),
    ) {
        let main_keys: Vec<u64> = main_pairs.iter().map(|(k, _)| *k).collect();
        let main_vals: Vec<u64> = main_pairs.iter().map(|(_, v)| *v).collect();
        let keys = attribute(&main_keys, &delta_pairs.iter().map(|(k, _)| *k).collect::<Vec<_>>());
        let values = attribute(&main_vals, &delta_pairs.iter().map(|(_, v)| *v).collect::<Vec<_>>());
        let validity = ValidityBitmap::all_valid(keys.len());

        let mut want: std::collections::BTreeMap<u64, (u64, u128)> = Default::default();
        for (k, v) in main_pairs.iter().chain(&delta_pairs) {
            let e = want.entry(*k).or_default();
            e.0 += 1;
            e.1 += *v as u128;
        }
        let got = group_by_sum(&keys, &values, &validity);
        prop_assert_eq!(got.len(), want.len());
        for (g, (k, (count, sum))) in got.iter().zip(want) {
            prop_assert_eq!(g.key, k);
            prop_assert_eq!(g.count, count);
            prop_assert_eq!(g.sum, sum);
        }
    }
}

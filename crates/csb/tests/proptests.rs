//! Property tests: the CSB+ tree must be observationally equivalent to a
//! `BTreeMap<K, Vec<u32>>` for any insertion sequence, and all structural
//! invariants must hold after every batch.

use hyrise_csb::CsbTree;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn model_insert(model: &mut BTreeMap<u64, Vec<u32>>, key: u64, tid: u32) {
    model.entry(key).or_default().push(tid);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn equivalent_to_btreemap(keys in prop::collection::vec(0u64..2_000, 0..2_000)) {
        let mut tree = CsbTree::new();
        let mut model: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for (tid, &k) in keys.iter().enumerate() {
            tree.insert(k, tid as u32);
            model_insert(&mut model, k, tid as u32);
        }
        prop_assert_eq!(tree.len(), keys.len());
        prop_assert_eq!(tree.unique_len(), model.len());
        let got: Vec<(u64, Vec<u32>)> = tree.iter().map(|(k, p)| (k, p.collect())).collect();
        let want: Vec<(u64, Vec<u32>)> = model.iter().map(|(k, v)| (*k, v.clone())).collect();
        prop_assert_eq!(got, want);
        tree.check_invariants();
    }

    #[test]
    fn point_lookups_match_model(keys in prop::collection::vec(0u64..500, 1..1_000), probes in prop::collection::vec(0u64..600, 50)) {
        let mut tree = CsbTree::new();
        let mut model: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for (tid, &k) in keys.iter().enumerate() {
            tree.insert(k, tid as u32);
            model_insert(&mut model, k, tid as u32);
        }
        for p in probes {
            let got: Option<Vec<u32>> = tree.get(&p).map(|it| it.collect());
            let want = model.get(&p).cloned();
            prop_assert_eq!(got, want, "probe {}", p);
        }
    }

    #[test]
    fn iter_from_matches_model_range(keys in prop::collection::vec(0u64..1_000, 1..1_000), start in 0u64..1_100) {
        let mut tree = CsbTree::new();
        let mut model: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for (tid, &k) in keys.iter().enumerate() {
            tree.insert(k, tid as u32);
            model_insert(&mut model, k, tid as u32);
        }
        let got: Vec<u64> = tree.iter_from(&start).map(|(k, _)| k).collect();
        let want: Vec<u64> = model.range(start..).map(|(k, _)| *k).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sorted_keys_are_sorted_unique(keys in prop::collection::vec(any::<u64>(), 0..3_000)) {
        let mut tree = CsbTree::new();
        for (tid, &k) in keys.iter().enumerate() {
            tree.insert(k, tid as u32);
        }
        let sorted = tree.sorted_keys();
        let mut expect: Vec<u64> = keys.clone();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(sorted, expect);
    }
}

//! A Cache-Sensitive B+ tree (CSB+ tree) with per-key tuple-id postings.
//!
//! The paper's delta partition maintains, per column, "a CSB+ tree \[Rao &
//! Ross, 24\] with all the unique uncompressed values", where "each value in
//! the tree also stores a pointer to the list of tuple ids where the value was
//! inserted" (Section 4.1). Step 1(a) of the merge performs "a linear
//! traversal of the leaves" to extract the sorted unique values, and the
//! *modified* Step 1(a) additionally walks each value's tuple-id list to
//! scatter the freshly assigned dictionary codes back into the delta
//! partition (Section 5.3).
//!
//! This crate implements that structure:
//!
//! * [`CsbTree`] — keys of any `Copy + Ord` type; the defining CSB+ property
//!   is preserved: **all children of a node are stored contiguously** in an
//!   arena, so a node stores only one child index plus its separator keys,
//!   which doubles the effective fanout per cache line compared to a B+ tree
//!   storing one pointer per child.
//! * Postings: every distinct key owns a chunked list of `u32` tuple ids in
//!   insertion order ([`Postings`]).
//! * [`CsbTree::iter`] — in-order traversal yielding `(key, postings)` pairs,
//!   the access path of merge Step 1(a). Because sibling nodes are adjacent
//!   in memory, the traversal streams through the leaf arena.
//!
//! Node groups are immutable once placed: splitting a child reallocates its
//! whole group at the end of the arena (the CSB+ "copy on group growth"),
//! leaving dead space behind. This matches the paper's accounting that "the
//! total amount of memory required to store the tree is around 2X the total
//! amount of memory consumed by the values themselves" (Section 6.1).
//!
//! # Example
//!
//! ```
//! use hyrise_csb::CsbTree;
//!
//! // The delta partition of the paper's Figure 5.
//! let mut tree = CsbTree::new();
//! for (tid, value) in ["bravo", "charlie", "golf", "charlie", "young"].iter().enumerate() {
//!     // fixed-width keys in the real system; &str works for the example
//!     tree.insert(*value, tid as u32);
//! }
//! assert_eq!(tree.unique_len(), 4);
//! assert_eq!(tree.len(), 5);
//! let ids: Vec<u32> = tree.get(&"charlie").unwrap().collect();
//! assert_eq!(ids, vec![1, 3]); // "charlie" was inserted at positions 1 and 3
//! let sorted: Vec<&str> = tree.iter().map(|(k, _)| k).collect();
//! assert_eq!(sorted, vec!["bravo", "charlie", "golf", "young"]);
//! ```

mod postings;
mod tree;

pub use postings::{Postings, PostingsPool};
pub use tree::{CsbTree, Iter};

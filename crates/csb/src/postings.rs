//! Chunked tuple-id postings lists.
//!
//! Each distinct key in the tree owns a list of the tuple ids at which it was
//! inserted, in insertion order. A single-id list (the common case when most
//! delta values are unique, e.g. the paper's 100%-unique experiments) is
//! stored inline in the 8-byte handle with no pool allocation; longer lists
//! are singly linked chains of fixed-size chunks inside one pool `Vec`, so
//! appending is O(1) via a tail pointer and traversal touches
//! `len / CHUNK_IDS` cache lines.

/// Ids per chunk. A chunk is 32 bytes (6 ids + len + next), two per cache line.
pub(crate) const CHUNK_IDS: usize = 6;

pub(crate) const NONE: u32 = u32::MAX;
/// Sentinel `head` marking an inline single-id list whose id lives in `tail`.
pub(crate) const INLINE: u32 = u32::MAX - 1;

#[derive(Clone, Debug)]
struct Chunk {
    ids: [u32; CHUNK_IDS],
    len: u8,
    next: u32,
}

/// Pool of postings chunks shared by all keys of one tree.
#[derive(Clone, Debug, Default)]
pub struct PostingsPool {
    chunks: Vec<Chunk>,
}

/// Handle to one key's postings list.
///
/// Either inline (`head == INLINE`, id in `tail`) or a chain
/// (`head`/`tail` are chunk indices).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct PostingsRef {
    pub head: u32,
    pub tail: u32,
}

impl PostingsPool {
    pub(crate) fn new() -> Self {
        Self { chunks: Vec::new() }
    }

    /// Start a new list containing a single id — free of pool space.
    pub(crate) fn start(&mut self, id: u32) -> PostingsRef {
        debug_assert!(id < INLINE, "tuple ids must be < u32::MAX - 1");
        PostingsRef {
            head: INLINE,
            tail: id,
        }
    }

    /// Append an id to an existing list, returning the (possibly updated)
    /// handle.
    pub(crate) fn push(&mut self, r: PostingsRef, id: u32) -> PostingsRef {
        if r.head == INLINE {
            // Promote the inline single id to a real chunk.
            let idx = self.chunks.len() as u32;
            let mut ids = [0u32; CHUNK_IDS];
            ids[0] = r.tail;
            ids[1] = id;
            self.chunks.push(Chunk {
                ids,
                len: 2,
                next: NONE,
            });
            return PostingsRef {
                head: idx,
                tail: idx,
            };
        }
        let mut r = r;
        let tail = &mut self.chunks[r.tail as usize];
        if (tail.len as usize) < CHUNK_IDS {
            tail.ids[tail.len as usize] = id;
            tail.len += 1;
            r
        } else {
            let idx = self.chunks.len() as u32;
            let mut ids = [0u32; CHUNK_IDS];
            ids[0] = id;
            self.chunks.push(Chunk {
                ids,
                len: 1,
                next: NONE,
            });
            self.chunks[r.tail as usize].next = idx;
            r.tail = idx;
            r
        }
    }

    /// Iterate a list in insertion order.
    pub(crate) fn iter(&self, r: PostingsRef) -> Postings<'_> {
        if r.head == INLINE {
            Postings {
                pool: self,
                chunk: NONE,
                pos: 0,
                inline: Some(r.tail),
            }
        } else {
            Postings {
                pool: self,
                chunk: r.head,
                pos: 0,
                inline: None,
            }
        }
    }

    /// Number of ids in the list (walks the chain).
    pub(crate) fn list_len(&self, r: PostingsRef) -> usize {
        if r.head == INLINE {
            return 1;
        }
        let mut n = 0usize;
        let mut c = r.head;
        while c != NONE {
            let ch = &self.chunks[c as usize];
            n += ch.len as usize;
            c = ch.next;
        }
        n
    }

    /// Heap bytes used by the pool.
    pub(crate) fn memory_bytes(&self) -> usize {
        self.chunks.len() * std::mem::size_of::<Chunk>()
    }
}

/// Iterator over one key's tuple ids, in insertion order.
///
/// This is the "pointer to the list of tuple ids" of the paper's Figure 5.
pub struct Postings<'a> {
    pool: &'a PostingsPool,
    chunk: u32,
    pos: u8,
    inline: Option<u32>,
}

impl Iterator for Postings<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if let Some(id) = self.inline.take() {
            return Some(id);
        }
        while self.chunk != NONE {
            let ch = &self.pool.chunks[self.chunk as usize];
            if self.pos < ch.len {
                let id = ch.ids[self.pos as usize];
                self.pos += 1;
                return Some(id);
            }
            self.chunk = ch.next;
            self.pos = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_single_id_uses_no_pool_space() {
        let mut pool = PostingsPool::new();
        let r = pool.start(42);
        assert_eq!(pool.memory_bytes(), 0);
        assert_eq!(pool.iter(r).collect::<Vec<_>>(), vec![42]);
        assert_eq!(pool.list_len(r), 1);
    }

    #[test]
    fn single_chunk_roundtrip() {
        let mut pool = PostingsPool::new();
        let mut r = pool.start(10);
        for id in 11..=14 {
            r = pool.push(r, id);
        }
        let got: Vec<u32> = pool.iter(r).collect();
        assert_eq!(got, vec![10, 11, 12, 13, 14]);
        assert_eq!(pool.list_len(r), 5);
    }

    #[test]
    fn spills_across_chunks_in_order() {
        let mut pool = PostingsPool::new();
        let mut r = pool.start(0);
        for id in 1..100 {
            r = pool.push(r, id);
        }
        let got: Vec<u32> = pool.iter(r).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(pool.list_len(r), 100);
    }

    #[test]
    fn interleaved_lists_stay_separate() {
        let mut pool = PostingsPool::new();
        let mut a = pool.start(1000);
        let mut b = pool.start(2000);
        for i in 1..50u32 {
            a = pool.push(a, 1000 + i);
            b = pool.push(b, 2000 + i);
        }
        let ga: Vec<u32> = pool.iter(a).collect();
        let gb: Vec<u32> = pool.iter(b).collect();
        assert_eq!(ga, (1000..1050).collect::<Vec<_>>());
        assert_eq!(gb, (2000..2050).collect::<Vec<_>>());
    }

    #[test]
    fn chunk_is_compact() {
        // The chunk must stay within half a cache line so two fit per line.
        assert!(std::mem::size_of::<Chunk>() <= 32);
    }
}

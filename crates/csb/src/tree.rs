//! The CSB+ tree proper.
//!
//! Layout (following Rao & Ross): internal nodes and leaves live in two
//! arenas. All children of an internal node form one contiguous *node group*
//! in the appropriate arena, so the node stores a single `child_start` index.
//! Splitting a node therefore grows its group: the parent copies the whole
//! group to the end of the arena with the new sibling spliced in. Dead groups
//! are left behind (bounded by the ~2× memory factor the paper cites for the
//! tree).

use crate::postings::{Postings, PostingsPool, PostingsRef, NONE};

/// Separator keys per internal node. With 8-byte keys an internal node is
/// two cache lines; the CSB+ trick means those two lines serve 15 children.
const MAX_KEYS: usize = 14;
/// Keys per leaf node.
const LEAF_KEYS: usize = 14;

#[derive(Clone)]
struct Internal<K> {
    n: u16,
    child_start: u32,
    keys: [K; MAX_KEYS],
}

#[derive(Clone)]
struct Leaf<K> {
    n: u16,
    keys: [K; LEAF_KEYS],
    posts: [PostingsRef; LEAF_KEYS],
}

const EMPTY_POST: PostingsRef = PostingsRef {
    head: NONE,
    tail: NONE,
};

enum RightNode<K> {
    Internal(Internal<K>),
    Leaf(Leaf<K>),
}

/// Cache-sensitive B+ tree mapping keys to tuple-id postings lists.
///
/// See the crate docs for the role this plays in the delta partition.
pub struct CsbTree<K> {
    internals: Vec<Internal<K>>,
    leaves: Vec<Leaf<K>>,
    pool: PostingsPool,
    /// Root node index: into `internals` if `height > 0`, else into `leaves`.
    root: u32,
    /// Number of internal levels above the leaf level.
    height: u16,
    /// Total number of inserted (key, tuple-id) pairs.
    len: usize,
    /// Number of distinct keys.
    unique: usize,
    /// Free node-group regions by exact size (dead groups left by splits are
    /// recycled here, keeping the arena near the paper's ~2x value bytes).
    free_leaf_groups: Vec<Vec<u32>>,
    free_internal_groups: Vec<Vec<u32>>,
}

/// Largest possible node group: a full node has `MAX_KEYS + 1` children and a
/// split momentarily handles one more.
const MAX_GROUP: usize = MAX_KEYS + 2;

impl<K: Copy + Ord + Default> Default for CsbTree<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Copy + Ord + Default> CsbTree<K> {
    /// An empty tree.
    pub fn new() -> Self {
        Self {
            internals: Vec::new(),
            leaves: Vec::new(),
            pool: PostingsPool::new(),
            root: NONE,
            height: 0,
            len: 0,
            unique: 0,
            free_leaf_groups: vec![Vec::new(); MAX_GROUP + 1],
            free_internal_groups: vec![Vec::new(); MAX_GROUP + 1],
        }
    }

    /// Reserve (or reuse) a contiguous region of `size` leaves.
    fn alloc_leaf_group(&mut self, size: usize) -> u32 {
        if let Some(start) = self.free_leaf_groups[size].pop() {
            return start;
        }
        let start = self.leaves.len() as u32;
        self.leaves.resize(
            start as usize + size,
            Leaf {
                n: 0,
                keys: [K::default(); LEAF_KEYS],
                posts: [EMPTY_POST; LEAF_KEYS],
            },
        );
        start
    }

    /// Reserve (or reuse) a contiguous region of `size` internal nodes.
    fn alloc_internal_group(&mut self, size: usize) -> u32 {
        if let Some(start) = self.free_internal_groups[size].pop() {
            return start;
        }
        let start = self.internals.len() as u32;
        self.internals.resize(
            start as usize + size,
            Internal {
                n: 0,
                child_start: NONE,
                keys: [K::default(); MAX_KEYS],
            },
        );
        start
    }

    fn free_group(&mut self, child_level: u16, start: u32, size: usize) {
        if child_level == 0 {
            self.free_leaf_groups[size].push(start);
        } else {
            self.free_internal_groups[size].push(start);
        }
    }

    /// Total number of inserted (key, tuple-id) pairs — the delta's `N_D`
    /// contribution for this column.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing has been inserted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct keys — the paper's `|U_D|`.
    #[inline]
    pub fn unique_len(&self) -> usize {
        self.unique
    }

    /// Number of internal levels (0 when the root is a leaf).
    #[inline]
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Approximate heap bytes held by the tree (arenas + postings pool),
    /// including dead groups — this is what the paper's Step 1(a) bandwidth
    /// term charges at roughly 2× the raw value bytes.
    pub fn memory_bytes(&self) -> usize {
        self.internals.len() * std::mem::size_of::<Internal<K>>()
            + self.leaves.len() * std::mem::size_of::<Leaf<K>>()
            + self.pool.memory_bytes()
    }

    /// Insert `key` at tuple id `tid`. Duplicate keys append to the existing
    /// postings list (the Figure 5 "charlie at positions 1 and 3" case).
    pub fn insert(&mut self, key: K, tid: u32) {
        if self.root == NONE {
            let start = self.alloc_leaf_group(1);
            let post = self.pool.start(tid);
            let leaf = &mut self.leaves[start as usize];
            leaf.n = 1;
            leaf.keys[0] = key;
            leaf.posts[0] = post;
            self.root = start;
            self.len = 1;
            self.unique = 1;
            return;
        }
        if let Some((sep, right)) = self.insert_at(self.root, self.height, key, tid) {
            // Root split: build a contiguous 2-node group [old_root, right]
            // and a fresh root above it. The old root slot (a group of one)
            // is recycled.
            let old_root = self.root;
            let new_start = if self.height == 0 {
                let start = self.alloc_leaf_group(2);
                let old = self.leaves[old_root as usize].clone();
                self.leaves[start as usize] = old;
                match right {
                    RightNode::Leaf(l) => self.leaves[start as usize + 1] = l,
                    RightNode::Internal(_) => unreachable!("leaf level split produced internal"),
                }
                start
            } else {
                let start = self.alloc_internal_group(2);
                let old = self.internals[old_root as usize].clone();
                self.internals[start as usize] = old;
                match right {
                    RightNode::Internal(i) => self.internals[start as usize + 1] = i,
                    RightNode::Leaf(_) => unreachable!("internal level split produced leaf"),
                }
                start
            };
            self.free_group(self.height, old_root, 1);
            let root_start = self.alloc_internal_group(1);
            let root = &mut self.internals[root_start as usize];
            root.n = 1;
            root.child_start = new_start;
            root.keys[0] = sep;
            self.root = root_start;
            self.height += 1;
        }
    }

    /// Recursive insert. Returns `Some((separator, right_sibling))` when the
    /// node at `idx` split; the caller owns the node's placement and rebuilds
    /// the group.
    fn insert_at(&mut self, idx: u32, level: u16, key: K, tid: u32) -> Option<(K, RightNode<K>)> {
        if level == 0 {
            return self.insert_leaf(idx, key, tid);
        }
        let (n, child_start) = {
            let node = &self.internals[idx as usize];
            (node.n as usize, node.child_start)
        };
        let keys = &self.internals[idx as usize].keys[..n];
        let c = keys.partition_point(|k| *k <= key);
        let (sep, right) = self.insert_at(child_start + c as u32, level - 1, key, tid)?;

        let cnt = n + 1; // children in the group
        if n < MAX_KEYS {
            let new_start = self.copy_group_insert(level - 1, child_start, cnt, c + 1, right);
            let node = &mut self.internals[idx as usize];
            let mut i = n;
            while i > c {
                node.keys[i] = node.keys[i - 1];
                i -= 1;
            }
            node.keys[c] = sep;
            node.n += 1;
            node.child_start = new_start;
            None
        } else {
            // Full node: split into left (kept in place) and right.
            // Combined separators: old keys with `sep` inserted at c.
            let mut combined = [K::default(); MAX_KEYS + 1];
            {
                let node = &self.internals[idx as usize];
                combined[..c].copy_from_slice(&node.keys[..c]);
                combined[c] = sep;
                combined[c + 1..].copy_from_slice(&node.keys[c..]);
            }
            let mid = MAX_KEYS.div_ceil(2); // 7: left keys 0..7, median 7, right 8..15
            let (left_start, right_start) =
                self.copy_group_split(level - 1, child_start, cnt, c + 1, right, mid + 1);
            let node = &mut self.internals[idx as usize];
            node.keys[..mid].copy_from_slice(&combined[..mid]);
            node.n = mid as u16;
            node.child_start = left_start;
            let mut rnode = Internal {
                n: (MAX_KEYS - mid) as u16,
                child_start: right_start,
                keys: [K::default(); MAX_KEYS],
            };
            rnode.keys[..MAX_KEYS - mid].copy_from_slice(&combined[mid + 1..]);
            Some((combined[mid], RightNode::Internal(rnode)))
        }
    }

    fn insert_leaf(&mut self, idx: u32, key: K, tid: u32) -> Option<(K, RightNode<K>)> {
        let leaf = &mut self.leaves[idx as usize];
        let n = leaf.n as usize;
        match leaf.keys[..n].binary_search(&key) {
            Ok(p) => {
                let r = leaf.posts[p];
                let updated = self.pool.push(r, tid);
                self.leaves[idx as usize].posts[p] = updated;
                self.len += 1;
                None
            }
            Err(p) => {
                self.len += 1;
                self.unique += 1;
                if n < LEAF_KEYS {
                    let mut i = n;
                    while i > p {
                        leaf.keys[i] = leaf.keys[i - 1];
                        leaf.posts[i] = leaf.posts[i - 1];
                        i -= 1;
                    }
                    leaf.keys[p] = key;
                    leaf.n += 1;
                    let post = self.pool.start(tid);
                    self.leaves[idx as usize].posts[p] = post;
                    None
                } else {
                    // Split: 15 entries total, left keeps 8, right takes 7.
                    let post = self.pool.start(tid);
                    let leaf = &mut self.leaves[idx as usize];
                    let mut keys = [K::default(); LEAF_KEYS + 1];
                    let mut posts = [EMPTY_POST; LEAF_KEYS + 1];
                    keys[..p].copy_from_slice(&leaf.keys[..p]);
                    posts[..p].copy_from_slice(&leaf.posts[..p]);
                    keys[p] = key;
                    posts[p] = post;
                    keys[p + 1..].copy_from_slice(&leaf.keys[p..]);
                    posts[p + 1..].copy_from_slice(&leaf.posts[p..]);

                    let left_n = (LEAF_KEYS + 1).div_ceil(2); // 8
                    let right_n = LEAF_KEYS + 1 - left_n; // 7
                    leaf.n = left_n as u16;
                    leaf.keys[..left_n].copy_from_slice(&keys[..left_n]);
                    leaf.posts[..left_n].copy_from_slice(&posts[..left_n]);

                    let mut right = Leaf {
                        n: right_n as u16,
                        keys: [K::default(); LEAF_KEYS],
                        posts: [EMPTY_POST; LEAF_KEYS],
                    };
                    right.keys[..right_n].copy_from_slice(&keys[left_n..]);
                    right.posts[..right_n].copy_from_slice(&posts[left_n..]);
                    let sep = right.keys[0];
                    Some((sep, RightNode::Leaf(right)))
                }
            }
        }
    }

    /// Copy the child group `[old_start, old_start+cnt)` (at `child_level`) to
    /// the end of its arena with `new_node` spliced in at `insert_pos`;
    /// returns the new group start.
    fn copy_group_insert(
        &mut self,
        child_level: u16,
        old_start: u32,
        cnt: usize,
        insert_pos: usize,
        new_node: RightNode<K>,
    ) -> u32 {
        let start = if child_level == 0 {
            let new_leaf = match new_node {
                RightNode::Leaf(l) => l,
                RightNode::Internal(_) => unreachable!("level/arena mismatch"),
            };
            let start = self.alloc_leaf_group(cnt + 1);
            for i in 0..=cnt {
                let node = if i == insert_pos {
                    new_leaf.clone()
                } else {
                    let src = old_start as usize + if i < insert_pos { i } else { i - 1 };
                    self.leaves[src].clone()
                };
                self.leaves[start as usize + i] = node;
            }
            start
        } else {
            let new_int = match new_node {
                RightNode::Internal(n) => n,
                RightNode::Leaf(_) => unreachable!("level/arena mismatch"),
            };
            let start = self.alloc_internal_group(cnt + 1);
            for i in 0..=cnt {
                let node = if i == insert_pos {
                    new_int.clone()
                } else {
                    let src = old_start as usize + if i < insert_pos { i } else { i - 1 };
                    self.internals[src].clone()
                };
                self.internals[start as usize + i] = node;
            }
            start
        };
        self.free_group(child_level, old_start, cnt);
        start
    }

    /// As [`Self::copy_group_insert`] but the enlarged group of `cnt + 1`
    /// children is split into two contiguous groups of `left_cnt` and
    /// `cnt + 1 - left_cnt` nodes; returns both starts.
    fn copy_group_split(
        &mut self,
        child_level: u16,
        old_start: u32,
        cnt: usize,
        insert_pos: usize,
        new_node: RightNode<K>,
        left_cnt: usize,
    ) -> (u32, u32) {
        let right_cnt = cnt + 1 - left_cnt;
        let (left_start, right_start) = if child_level == 0 {
            (
                self.alloc_leaf_group(left_cnt),
                self.alloc_leaf_group(right_cnt),
            )
        } else {
            (
                self.alloc_internal_group(left_cnt),
                self.alloc_internal_group(right_cnt),
            )
        };
        for i in 0..=cnt {
            let dst = if i < left_cnt {
                left_start as usize + i
            } else {
                right_start as usize + (i - left_cnt)
            };
            if child_level == 0 {
                let node = if i == insert_pos {
                    match &new_node {
                        RightNode::Leaf(l) => l.clone(),
                        RightNode::Internal(_) => unreachable!("level/arena mismatch"),
                    }
                } else {
                    let src = old_start as usize + if i < insert_pos { i } else { i - 1 };
                    self.leaves[src].clone()
                };
                self.leaves[dst] = node;
            } else {
                let node = if i == insert_pos {
                    match &new_node {
                        RightNode::Internal(n) => n.clone(),
                        RightNode::Leaf(_) => unreachable!("level/arena mismatch"),
                    }
                } else {
                    let src = old_start as usize + if i < insert_pos { i } else { i - 1 };
                    self.internals[src].clone()
                };
                self.internals[dst] = node;
            }
        }
        self.free_group(child_level, old_start, cnt);
        (left_start, right_start)
    }

    /// Postings for `key`, if present.
    pub fn get(&self, key: &K) -> Option<Postings<'_>> {
        if self.root == NONE {
            return None;
        }
        let mut idx = self.root;
        let mut level = self.height;
        while level > 0 {
            let node = &self.internals[idx as usize];
            let c = node.keys[..node.n as usize].partition_point(|k| k <= key);
            idx = node.child_start + c as u32;
            level -= 1;
        }
        let leaf = &self.leaves[idx as usize];
        match leaf.keys[..leaf.n as usize].binary_search(key) {
            Ok(p) => Some(self.pool.iter(leaf.posts[p])),
            Err(_) => None,
        }
    }

    /// True if `key` has been inserted at least once.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Number of tuple ids recorded for `key` (0 if absent).
    pub fn postings_len(&self, key: &K) -> usize {
        match self.get_ref(key) {
            Some(r) => self.pool.list_len(r),
            None => 0,
        }
    }

    fn get_ref(&self, key: &K) -> Option<PostingsRef> {
        if self.root == NONE {
            return None;
        }
        let mut idx = self.root;
        let mut level = self.height;
        while level > 0 {
            let node = &self.internals[idx as usize];
            let c = node.keys[..node.n as usize].partition_point(|k| k <= key);
            idx = node.child_start + c as u32;
            level -= 1;
        }
        let leaf = &self.leaves[idx as usize];
        leaf.keys[..leaf.n as usize]
            .binary_search(key)
            .ok()
            .map(|p| leaf.posts[p])
    }

    /// In-order traversal over `(key, postings)` — the merge Step 1(a) path.
    pub fn iter(&self) -> Iter<'_, K> {
        let mut it = Iter {
            tree: self,
            stack: Vec::with_capacity(self.height as usize + 1),
            leaf: NONE,
            leaf_pos: 0,
            done: self.root == NONE,
        };
        if !it.done {
            it.descend(self.root, self.height);
        }
        it
    }

    /// In-order traversal starting at the first key `>= key`.
    pub fn iter_from(&self, key: &K) -> Iter<'_, K> {
        let mut it = Iter {
            tree: self,
            stack: Vec::with_capacity(self.height as usize + 1),
            leaf: NONE,
            leaf_pos: 0,
            done: self.root == NONE,
        };
        if it.done {
            return it;
        }
        let mut idx = self.root;
        let mut level = self.height;
        while level > 0 {
            let node = &self.internals[idx as usize];
            let c = node.keys[..node.n as usize].partition_point(|k| k <= key);
            it.stack.push((idx, level, (c + 1) as u16));
            idx = node.child_start + c as u32;
            level -= 1;
        }
        it.leaf = idx;
        let leaf = &self.leaves[idx as usize];
        it.leaf_pos = leaf.keys[..leaf.n as usize].partition_point(|k| k < key) as u16;
        it
    }

    /// Sorted unique keys — the unmodified Step 1(a) output `U_D`.
    pub fn sorted_keys(&self) -> Vec<K> {
        self.iter().map(|(k, _)| k).collect()
    }

    /// Validate all structural invariants (test/debug helper):
    /// in-node key order, subtree key bounds, counters vs. traversal.
    pub fn check_invariants(&self) {
        if self.root == NONE {
            assert_eq!(self.len, 0);
            assert_eq!(self.unique, 0);
            return;
        }
        let mut keys_seen = 0usize;
        let mut posts_seen = 0usize;
        let mut prev: Option<K> = None;
        for (k, postings) in self.iter() {
            if let Some(p) = prev {
                assert!(p < k, "iter keys must be strictly increasing");
            }
            prev = Some(k);
            keys_seen += 1;
            let cnt = postings.count();
            assert!(cnt >= 1, "every key must have at least one posting");
            posts_seen += cnt;
        }
        assert_eq!(keys_seen, self.unique, "unique counter mismatch");
        assert_eq!(posts_seen, self.len, "len counter mismatch");
        self.check_node(self.root, self.height, None, None);
    }

    fn check_node(&self, idx: u32, level: u16, lower: Option<K>, upper: Option<K>) {
        if level == 0 {
            let leaf = &self.leaves[idx as usize];
            let n = leaf.n as usize;
            assert!(n >= 1, "non-root leaves must be non-empty");
            for w in leaf.keys[..n].windows(2) {
                assert!(w[0] < w[1], "leaf keys must be strictly sorted");
            }
            for k in &leaf.keys[..n] {
                if let Some(lo) = lower {
                    assert!(*k >= lo, "leaf key below subtree lower bound");
                }
                if let Some(hi) = upper {
                    assert!(*k < hi, "leaf key at/above subtree upper bound");
                }
            }
            return;
        }
        let node = &self.internals[idx as usize];
        let n = node.n as usize;
        assert!(n >= 1, "internal nodes must have at least one separator");
        for w in node.keys[..n].windows(2) {
            assert!(w[0] < w[1], "separators must be strictly sorted");
        }
        for c in 0..=n {
            let lo = if c == 0 {
                lower
            } else {
                Some(node.keys[c - 1])
            };
            let hi = if c == n { upper } else { Some(node.keys[c]) };
            self.check_node(node.child_start + c as u32, level - 1, lo, hi);
        }
    }
}

/// In-order iterator over `(key, postings)`; see [`CsbTree::iter`].
pub struct Iter<'a, K> {
    tree: &'a CsbTree<K>,
    /// (internal node index, its level, next child position to visit)
    stack: Vec<(u32, u16, u16)>,
    leaf: u32,
    leaf_pos: u16,
    done: bool,
}

impl<'a, K: Copy + Ord + Default> Iter<'a, K> {
    fn descend(&mut self, mut idx: u32, mut level: u16) {
        while level > 0 {
            self.stack.push((idx, level, 1));
            idx = self.tree.internals[idx as usize].child_start;
            level -= 1;
        }
        self.leaf = idx;
        self.leaf_pos = 0;
    }
}

impl<'a, K: Copy + Ord + Default> Iterator for Iter<'a, K> {
    type Item = (K, Postings<'a>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let leaf = &self.tree.leaves[self.leaf as usize];
            if (self.leaf_pos as usize) < leaf.n as usize {
                let p = self.leaf_pos as usize;
                self.leaf_pos += 1;
                return Some((leaf.keys[p], self.tree.pool.iter(leaf.posts[p])));
            }
            loop {
                match self.stack.pop() {
                    None => {
                        self.done = true;
                        return None;
                    }
                    Some((idx, level, next)) => {
                        let node = &self.tree.internals[idx as usize];
                        if next <= node.n {
                            self.stack.push((idx, level, next + 1));
                            self.descend(node.child_start + next as u32, level - 1);
                            break;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t: CsbTree<u64> = CsbTree::new();
        assert!(t.is_empty());
        assert_eq!(t.unique_len(), 0);
        assert!(t.get(&5).is_none());
        assert_eq!(t.sorted_keys(), Vec::<u64>::new());
        t.check_invariants();
    }

    #[test]
    fn single_key() {
        let mut t = CsbTree::new();
        t.insert(42u64, 7);
        assert_eq!(t.len(), 1);
        assert_eq!(t.unique_len(), 1);
        let ids: Vec<u32> = t.get(&42).unwrap().collect();
        assert_eq!(ids, vec![7]);
        t.check_invariants();
    }

    #[test]
    fn figure5_delta_partition() {
        // Values inserted at positions 0..5: bravo charlie charlie golf young.
        let mut t = CsbTree::new();
        for (tid, v) in [2u64, 3, 3, 7, 25].iter().enumerate() {
            t.insert(*v, tid as u32);
        }
        assert_eq!(t.sorted_keys(), vec![2, 3, 7, 25]);
        assert_eq!(t.get(&3).unwrap().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(t.len(), 5);
        assert_eq!(t.unique_len(), 4);
        t.check_invariants();
    }

    #[test]
    fn ascending_inserts_split_correctly() {
        let mut t = CsbTree::new();
        for i in 0..1000u64 {
            t.insert(i, i as u32);
        }
        assert_eq!(t.unique_len(), 1000);
        assert!(
            t.height() >= 2,
            "1000 keys with fanout 15 must have >= 2 levels"
        );
        assert_eq!(t.sorted_keys(), (0..1000).collect::<Vec<_>>());
        for i in (0..1000).step_by(37) {
            assert_eq!(t.get(&i).unwrap().collect::<Vec<_>>(), vec![i as u32]);
        }
        t.check_invariants();
    }

    #[test]
    fn descending_inserts_split_correctly() {
        let mut t = CsbTree::new();
        for i in (0..1000u64).rev() {
            t.insert(i, i as u32);
        }
        assert_eq!(t.sorted_keys(), (0..1000).collect::<Vec<_>>());
        t.check_invariants();
    }

    #[test]
    fn pseudo_random_inserts_with_duplicates() {
        let mut t = CsbTree::new();
        let mut reference: std::collections::BTreeMap<u64, Vec<u32>> = Default::default();
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for tid in 0..5000u32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 700; // plenty of duplicates
            t.insert(key, tid);
            reference.entry(key).or_default().push(tid);
        }
        assert_eq!(t.len(), 5000);
        assert_eq!(t.unique_len(), reference.len());
        let got: Vec<(u64, Vec<u32>)> = t.iter().map(|(k, p)| (k, p.collect())).collect();
        let want: Vec<(u64, Vec<u32>)> = reference.into_iter().collect();
        assert_eq!(got, want, "tree must equal BTreeMap reference");
        t.check_invariants();
    }

    #[test]
    fn iter_from_starts_at_lower_bound() {
        let mut t = CsbTree::new();
        for i in (0..500u64).step_by(5) {
            t.insert(i, i as u32);
        }
        // from an existing key
        let got: Vec<u64> = t.iter_from(&100).map(|(k, _)| k).take(3).collect();
        assert_eq!(got, vec![100, 105, 110]);
        // from a missing key: next greater
        let got: Vec<u64> = t.iter_from(&101).map(|(k, _)| k).take(3).collect();
        assert_eq!(got, vec![105, 110, 115]);
        // past the end
        assert_eq!(t.iter_from(&1000).count(), 0);
        // before the beginning
        assert_eq!(t.iter_from(&0).count(), 100);
    }

    #[test]
    fn iter_from_at_leaf_boundary() {
        // Force splits, then probe around every key to hit leaf-boundary
        // positions of iter_from.
        let mut t = CsbTree::new();
        for i in 0..300u64 {
            t.insert(i * 2, i as u32);
        }
        for probe in 0..600u64 {
            let want: Vec<u64> = (0..300u64)
                .map(|i| i * 2)
                .filter(|k| *k >= probe)
                .take(2)
                .collect();
            let got: Vec<u64> = t.iter_from(&probe).map(|(k, _)| k).take(2).collect();
            assert_eq!(got, want, "probe {probe}");
        }
    }

    #[test]
    fn postings_preserve_insertion_order_across_splits() {
        let mut t = CsbTree::new();
        // Interleave: repeatedly insert the same 20 keys so postings grow
        // while the tree splits around them.
        for round in 0..50u32 {
            for k in 0..20u64 {
                t.insert(k * 1000, round * 20 + k as u32);
            }
        }
        for k in 0..20u64 {
            let ids: Vec<u32> = t.get(&(k * 1000)).unwrap().collect();
            let want: Vec<u32> = (0..50u32).map(|r| r * 20 + k as u32).collect();
            assert_eq!(ids, want, "key {k}");
        }
        assert_eq!(t.postings_len(&0), 50);
        assert_eq!(t.postings_len(&999), 0);
        t.check_invariants();
    }

    #[test]
    fn memory_is_bounded_relative_to_values() {
        // The paper charges ~2x the value bytes for the tree. Dead groups make
        // our arena larger; assert we stay within a sane constant factor.
        let mut t = CsbTree::new();
        let n = 20_000u64;
        for i in 0..n {
            t.insert(i.wrapping_mul(0x9E37_79B9_7F4A_7C15), i as u32)
        }
        let value_bytes = (n as usize) * 8;
        // The paper charges ~2x the raw value bytes for the tree (Section
        // 6.1). Our leaves carry an 8-byte postings handle per key and groups
        // average ~70% occupancy, so allow a small constant above 2x.
        assert!(
            t.memory_bytes() < 8 * value_bytes,
            "tree memory {} should be within 8x value bytes {}",
            t.memory_bytes(),
            value_bytes
        );
        t.check_invariants();
    }

    #[test]
    fn works_with_u32_and_tuple_keys() {
        let mut t: CsbTree<u32> = CsbTree::new();
        t.insert(5, 0);
        t.insert(3, 1);
        assert_eq!(t.sorted_keys(), vec![3, 5]);

        let mut t2: CsbTree<(u8, u8)> = CsbTree::new();
        t2.insert((1, 2), 0);
        t2.insert((1, 1), 1);
        t2.insert((0, 9), 2);
        assert_eq!(t2.sorted_keys(), vec![(0, 9), (1, 1), (1, 2)]);
    }
}

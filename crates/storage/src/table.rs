//! Tables: `N_C` attributes sharing one tuple-id space, insert-only.

use crate::column::{AnyValue, Column, ColumnType};
use crate::validity::ValidityBitmap;
use std::fmt;

/// Column names and types of a table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    names: Vec<String>,
    types: Vec<ColumnType>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    pub fn new<S: Into<String>>(columns: Vec<(S, ColumnType)>) -> Self {
        let mut names = Vec::with_capacity(columns.len());
        let mut types = Vec::with_capacity(columns.len());
        for (n, t) in columns {
            names.push(n.into());
            types.push(t);
        }
        Self { names, types }
    }

    /// A schema of `n` homogeneous columns `c0..cn` of `ty` (benchmark
    /// tables: the paper fixes one `E_j` per experiment across `N_C`
    /// columns).
    pub fn homogeneous(n: usize, ty: ColumnType) -> Self {
        Self {
            names: (0..n).map(|i| format!("c{i}")).collect(),
            types: vec![ty; n],
        }
    }

    /// Number of columns — the paper's `N_C`.
    pub fn num_columns(&self) -> usize {
        self.types.len()
    }

    /// Column name by position.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Column type by position.
    pub fn column_type(&self, i: usize) -> ColumnType {
        self.types[i]
    }

    /// Position of a column by name.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }
}

/// Errors from row-level table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// The row had the wrong number of values.
    ArityMismatch {
        /// Columns in the schema.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A value's type did not match its column.
    TypeMismatch {
        /// Offending column position.
        column: usize,
        /// The column's type.
        expected: ColumnType,
        /// The supplied value's type.
        got: ColumnType,
    },
    /// A row id past the end of the table.
    RowOutOfRange {
        /// The requested row.
        row: usize,
        /// Current table length.
        len: usize,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} values, table has {expected} columns")
            }
            TableError::TypeMismatch {
                column,
                expected,
                got,
            } => {
                write!(f, "column {column} expects {expected}, got {got}")
            }
            TableError::RowOutOfRange { row, len } => {
                write!(f, "row {row} out of range (table has {len} rows)")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// A table: one write (delta) and one read-optimized (main) partition per
/// column, a shared validity bitmap, and insert-only modification semantics
/// (Section 3). All columns always have identical length: "the implicit
/// offset of a tuple is always valid for all attributes of a table".
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    validity: ValidityBitmap,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new<S: Into<String>>(name: S, schema: Schema) -> Self {
        let columns = (0..schema.num_columns())
            .map(|i| Column::new(schema.column_type(i)))
            .collect();
        Self {
            name: name.into(),
            schema,
            columns,
            validity: ValidityBitmap::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of columns (`N_C`).
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Total rows ever inserted (valid + invalidated history).
    pub fn row_count(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Rows currently visible.
    pub fn valid_row_count(&self) -> usize {
        self.validity.valid_count()
    }

    /// Insert a full row; returns its tuple id. "Any modification operation
    /// on the table result\[s\] in an entry in the delta partition."
    pub fn insert_row(&mut self, values: &[AnyValue]) -> Result<usize, TableError> {
        self.check_row(values)?;
        let mut row = 0;
        for (c, v) in self.columns.iter_mut().zip(values) {
            row = c.append(*v).expect("types pre-checked");
        }
        self.validity.push_valid();
        Ok(row)
    }

    /// Insert-only update: writes the new version and invalidates `old_row`.
    /// Returns the new row id. The history row remains readable.
    pub fn update_row(&mut self, old_row: usize, values: &[AnyValue]) -> Result<usize, TableError> {
        if old_row >= self.row_count() {
            return Err(TableError::RowOutOfRange {
                row: old_row,
                len: self.row_count(),
            });
        }
        let new_row = self.insert_row(values)?;
        self.validity.invalidate(old_row);
        Ok(new_row)
    }

    /// Invalidate a row ("deletes only invalidate rows").
    pub fn delete_row(&mut self, row: usize) -> Result<(), TableError> {
        if row >= self.row_count() {
            return Err(TableError::RowOutOfRange {
                row,
                len: self.row_count(),
            });
        }
        self.validity.invalidate(row);
        Ok(())
    }

    /// Read a full row (regardless of validity — history reads are allowed).
    pub fn row(&self, row: usize) -> Result<Vec<AnyValue>, TableError> {
        if row >= self.row_count() {
            return Err(TableError::RowOutOfRange {
                row,
                len: self.row_count(),
            });
        }
        Ok(self.columns.iter().map(|c| c.get(row)).collect())
    }

    /// Is `row` the current (visible) version?
    pub fn is_valid(&self, row: usize) -> bool {
        self.validity.is_valid(row)
    }

    /// The validity bitmap.
    pub fn validity(&self) -> &ValidityBitmap {
        &self.validity
    }

    /// Column by position.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Mutable column access (merge commit path).
    pub fn column_mut(&mut self, i: usize) -> &mut Column {
        &mut self.columns[i]
    }

    /// All columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// All columns, mutable (merge commit path).
    pub fn columns_mut(&mut self) -> &mut [Column] {
        &mut self.columns
    }

    /// The largest `N_D / N_M` across columns (all columns share tuple ids,
    /// so in practice they are equal; kept per-column for robustness).
    pub fn max_delta_fraction(&self) -> f64 {
        self.columns
            .iter()
            .map(|c| c.delta_fraction())
            .fold(0.0, f64::max)
    }

    /// Total delta tuples across the table (the table-level `N_D`).
    pub fn delta_len(&self) -> usize {
        self.columns.first().map_or(0, |c| c.delta_len())
    }

    /// Total main tuples (the table-level `N_M`).
    pub fn main_len(&self) -> usize {
        self.columns.first().map_or(0, |c| c.main_len())
    }

    /// Heap bytes across all columns.
    pub fn memory_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.memory_bytes()).sum()
    }

    fn check_row(&self, values: &[AnyValue]) -> Result<(), TableError> {
        if values.len() != self.columns.len() {
            return Err(TableError::ArityMismatch {
                expected: self.columns.len(),
                got: values.len(),
            });
        }
        for (i, v) in values.iter().enumerate() {
            let expected = self.schema.column_type(i);
            if v.column_type() != expected {
                return Err(TableError::TypeMismatch {
                    column: i,
                    expected,
                    got: v.column_type(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Value, V16};

    fn sales_schema() -> Schema {
        Schema::new(vec![
            ("order_id", ColumnType::U64),
            ("qty", ColumnType::U32),
            ("doc", ColumnType::V16),
        ])
    }

    fn row(order: u64, qty: u32, doc: u64) -> Vec<AnyValue> {
        vec![
            AnyValue::U64(order),
            AnyValue::U32(qty),
            AnyValue::V16(V16::from_seed(doc)),
        ]
    }

    #[test]
    fn insert_and_read_rows() {
        let mut t = Table::new("sales", sales_schema());
        let r0 = t.insert_row(&row(100, 5, 1)).unwrap();
        let r1 = t.insert_row(&row(101, 7, 2)).unwrap();
        assert_eq!((r0, r1), (0, 1));
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.row(1).unwrap(), row(101, 7, 2));
        assert!(t.is_valid(0) && t.is_valid(1));
    }

    #[test]
    fn update_keeps_history_and_flips_validity() {
        let mut t = Table::new("sales", sales_schema());
        let r0 = t.insert_row(&row(100, 5, 1)).unwrap();
        let r1 = t.update_row(r0, &row(100, 6, 1)).unwrap();
        assert_eq!(t.row_count(), 2, "insert-only: old version retained");
        assert!(!t.is_valid(r0), "old version invalidated");
        assert!(t.is_valid(r1));
        assert_eq!(t.row(r0).unwrap(), row(100, 5, 1), "history still readable");
        assert_eq!(t.valid_row_count(), 1);
    }

    #[test]
    fn delete_only_invalidates() {
        let mut t = Table::new("sales", sales_schema());
        let r = t.insert_row(&row(1, 1, 1)).unwrap();
        t.delete_row(r).unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.valid_row_count(), 0);
        assert_eq!(t.row(r).unwrap(), row(1, 1, 1));
    }

    #[test]
    fn arity_and_type_errors() {
        let mut t = Table::new("sales", sales_schema());
        assert_eq!(
            t.insert_row(&[AnyValue::U64(1)]),
            Err(TableError::ArityMismatch {
                expected: 3,
                got: 1
            })
        );
        let bad = vec![
            AnyValue::U32(1),
            AnyValue::U32(2),
            AnyValue::V16(V16::default()),
        ];
        assert_eq!(
            t.insert_row(&bad),
            Err(TableError::TypeMismatch {
                column: 0,
                expected: ColumnType::U64,
                got: ColumnType::U32
            })
        );
        assert_eq!(t.row_count(), 0, "failed inserts must not partially apply");
    }

    #[test]
    fn row_out_of_range() {
        let t = Table::new("sales", sales_schema());
        assert!(matches!(t.row(0), Err(TableError::RowOutOfRange { .. })));
    }

    #[test]
    fn all_inserts_land_in_delta() {
        let mut t = Table::new("sales", sales_schema());
        for i in 0..10 {
            t.insert_row(&row(i, i as u32, i)).unwrap();
        }
        assert_eq!(t.main_len(), 0);
        assert_eq!(t.delta_len(), 10);
        assert_eq!(
            t.max_delta_fraction(),
            10.0,
            "empty main reads as N_D / 1 (finite)"
        );
    }

    #[test]
    fn homogeneous_schema_helper() {
        let s = Schema::homogeneous(300, ColumnType::U64);
        assert_eq!(s.num_columns(), 300);
        assert_eq!(s.name(0), "c0");
        assert_eq!(s.name(299), "c299");
        assert_eq!(s.position("c150"), Some(150));
        assert_eq!(s.position("missing"), None);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = TableError::TypeMismatch {
            column: 2,
            expected: ColumnType::U64,
            got: ColumnType::U32,
        };
        assert_eq!(e.to_string(), "column 2 expects u64, got u32");
    }
}

//! Column value types.
//!
//! The paper evaluates fixed uncompressed value-lengths `E_j` of 4, 8 and 16
//! bytes (Section 7). We model those as three concrete [`Value`] types:
//! `u32`, `u64` and [`V16`] (a 16-byte lexicographically ordered value,
//! standing in for short fixed-width strings such as document numbers).

use std::fmt;
use std::hash::Hash;

/// A fixed-width column value.
///
/// Implementors must order consistently with their byte-encoded form so that
/// dictionary codes are order-preserving (range queries compare codes).
pub trait Value: Copy + Ord + Eq + Hash + Default + Send + Sync + fmt::Debug + 'static {
    /// The paper's uncompressed value-length `E_j` in bytes.
    const BYTES: usize;

    /// Deterministically derive a value from a 64-bit seed. Distinct seeds
    /// below 2^32 must map to distinct values (used by the workload
    /// generators to hit exact unique-value counts).
    fn from_seed(seed: u64) -> Self;

    /// A lossy 64-bit projection used for checksums and aggregates.
    fn to_u64_lossy(self) -> u64;

    /// Append exactly [`Value::BYTES`] bytes encoding `self` (the WAL and
    /// checkpoint on-disk form). Round-trips through [`Value::read_bytes`].
    fn write_bytes(self, out: &mut Vec<u8>);

    /// Decode a value from exactly [`Value::BYTES`] bytes produced by
    /// [`Value::write_bytes`].
    ///
    /// # Panics
    /// If `b` is shorter than [`Value::BYTES`].
    fn read_bytes(b: &[u8]) -> Self;
}

impl Value for u32 {
    const BYTES: usize = 4;

    #[inline]
    fn from_seed(seed: u64) -> Self {
        seed as u32
    }

    #[inline]
    fn to_u64_lossy(self) -> u64 {
        self as u64
    }

    #[inline]
    fn write_bytes(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    #[inline]
    fn read_bytes(b: &[u8]) -> Self {
        u32::from_le_bytes(b[..4].try_into().expect("4 bytes"))
    }
}

impl Value for u64 {
    const BYTES: usize = 8;

    #[inline]
    fn from_seed(seed: u64) -> Self {
        seed
    }

    #[inline]
    fn to_u64_lossy(self) -> u64 {
        self
    }

    #[inline]
    fn write_bytes(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    #[inline]
    fn read_bytes(b: &[u8]) -> Self {
        u64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
    }
}

/// A 16-byte fixed-width value ordered lexicographically byte-wise
/// (big-endian encoding of the seed in the low half keeps ordering
/// consistent with the seed for generated data).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct V16(pub [u8; 16]);

impl Value for V16 {
    const BYTES: usize = 16;

    #[inline]
    fn from_seed(seed: u64) -> Self {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&seed.to_be_bytes());
        b[8..].copy_from_slice(&seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_be_bytes());
        V16(b)
    }

    #[inline]
    fn to_u64_lossy(self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("8 bytes"))
    }

    #[inline]
    fn write_bytes(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }

    #[inline]
    fn read_bytes(b: &[u8]) -> Self {
        V16(b[..16].try_into().expect("16 bytes"))
    }
}

impl fmt::Debug for V16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V16({:#018x})", self.to_u64_lossy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_widths_match_reality() {
        assert_eq!(std::mem::size_of::<u32>(), <u32 as Value>::BYTES);
        assert_eq!(std::mem::size_of::<u64>(), <u64 as Value>::BYTES);
        assert_eq!(std::mem::size_of::<V16>(), <V16 as Value>::BYTES);
    }

    #[test]
    fn from_seed_is_injective_below_2_32() {
        // Spot-check: seeds map to distinct values and ordering follows seeds.
        let seeds = [0u64, 1, 2, 1000, 65_535, 1 << 31, (1 << 32) - 1];
        for w in seeds.windows(2) {
            assert!(u32::from_seed(w[0]) < u32::from_seed(w[1]));
            assert!(u64::from_seed(w[0]) < u64::from_seed(w[1]));
            assert!(V16::from_seed(w[0]) < V16::from_seed(w[1]));
        }
    }

    #[test]
    fn v16_ordering_is_big_endian_lexicographic() {
        let a = V16::from_seed(5);
        let b = V16::from_seed(6);
        assert!(a < b);
        assert!(a.0 < b.0, "byte order must agree with value order");
    }

    #[test]
    fn byte_codec_round_trips() {
        fn check<V: Value>(v: V) {
            let mut buf = Vec::new();
            v.write_bytes(&mut buf);
            assert_eq!(buf.len(), V::BYTES);
            assert_eq!(V::read_bytes(&buf), v);
        }
        for seed in [0u64, 1, 42, u32::MAX as u64, u64::MAX] {
            check(u32::from_seed(seed));
            check(u64::from_seed(seed));
            check(V16::from_seed(seed));
        }
    }

    #[test]
    fn v16_lossy_projection_preserves_seed() {
        for seed in [0u64, 42, u32::MAX as u64, u64::MAX] {
            assert_eq!(V16::from_seed(seed).to_u64_lossy(), seed);
        }
    }
}

//! Sorted dictionaries (`U_M`, `U_D`, `U'_M` in the paper's Table 1).
//!
//! "An ordered collection is used as a dictionary, allowing fast iterations
//! over the tuples in sorted order. Additionally, the search operation can be
//! implemented as binary search that has logarithmic complexity." (Section 3)
//!
//! Because the dictionary is sorted and codes are positions, the encoding is
//! **order-preserving**: code comparisons agree with value comparisons, which
//! is what lets range selects run on compressed codes.

use crate::value::Value;
use std::ops::RangeInclusive;

/// A sorted, duplicate-free collection of column values. The compressed code
/// of a value is its index in this collection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dictionary<V> {
    values: Vec<V>,
}

impl<V: Value> Default for Dictionary<V> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<V: Value> Dictionary<V> {
    /// An empty dictionary (an empty main partition has one).
    pub fn empty() -> Self {
        Self { values: Vec::new() }
    }

    /// Build from values that are already sorted and unique.
    ///
    /// # Panics
    /// In debug builds, if the input is not strictly increasing.
    pub fn from_sorted_unique(values: Vec<V>) -> Self {
        debug_assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "dictionary input must be sorted unique"
        );
        Self { values }
    }

    /// Build from arbitrary values (sorts and deduplicates). Used by the
    /// initial bulk load; the merge path never needs this.
    pub fn from_unsorted(mut values: Vec<V>) -> Self {
        values.sort_unstable();
        values.dedup();
        Self { values }
    }

    /// Number of entries — the paper's `|U|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the dictionary has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The uncompressed value for `code` — the Step 2(b) "lookup in the
    /// dictionary `U_M`" (a direct array access).
    ///
    /// # Panics
    /// If `code` is out of range.
    #[inline]
    pub fn value_at(&self, code: u32) -> V {
        self.values[code as usize]
    }

    /// The code for `value`, if present — a binary search (Section 3).
    #[inline]
    pub fn code_of(&self, value: &V) -> Option<u32> {
        self.values.binary_search(value).ok().map(|i| i as u32)
    }

    /// The code range `[lo, hi]` covering all dictionary values within the
    /// inclusive value range, or `None` if no value falls inside. Used by
    /// range selects on compressed codes.
    pub fn code_range(&self, range: RangeInclusive<V>) -> Option<RangeInclusive<u32>> {
        self.value_id_range(range.start(), range.end())
    }

    /// Predicate pushdown hook: rewrite the inclusive value interval
    /// `[lo, hi]` into the range of **value ids** (dictionary codes) it
    /// covers, or `None` when no dictionary value falls inside (the
    /// predicate cannot match any main-partition tuple). Two binary searches
    /// (Section 3's "binary search in the dictionary while scanning the
    /// column for the encoded value only"); equality is the collapsed case
    /// `lo == hi`, which yields `Some(c..=c)` exactly when the value is
    /// present. Because the encoding is order-preserving, scanning the
    /// packed codes against the returned id range is equivalent to
    /// evaluating the value predicate — without decoding a single tuple.
    pub fn value_id_range(&self, lo: &V, hi: &V) -> Option<RangeInclusive<u32>> {
        let start = self.values.partition_point(|v| v < lo);
        let end = self.values.partition_point(|v| v <= hi);
        if start >= end {
            None
        } else {
            Some(start as u32..=(end - 1) as u32)
        }
    }

    /// All values in sorted order.
    #[inline]
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Consume into the sorted value vector.
    pub fn into_values(self) -> Vec<V> {
        self.values
    }

    /// Heap bytes (the `E_j * |U|` term of Equations 8–10).
    pub fn memory_bytes(&self) -> usize {
        self.values.len() * V::BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> Dictionary<u64> {
        // The paper's Figure 5 main dictionary (6 values -> 3-bit codes):
        // apple charlie delta frank hotel inbox, as integers.
        Dictionary::from_sorted_unique(vec![1, 3, 4, 6, 8, 9])
    }

    #[test]
    fn code_of_and_value_at_are_inverse() {
        let d = dict();
        for (i, v) in d.values().iter().enumerate() {
            assert_eq!(d.code_of(v), Some(i as u32));
            assert_eq!(d.value_at(i as u32), *v);
        }
        assert_eq!(d.code_of(&2), None);
        assert_eq!(d.code_of(&100), None);
    }

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let d = Dictionary::from_unsorted(vec![5u64, 1, 5, 3, 1, 9]);
        assert_eq!(d.values(), &[1, 3, 5, 9]);
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn empty_dictionary() {
        let d: Dictionary<u64> = Dictionary::empty();
        assert!(d.is_empty());
        assert_eq!(d.code_of(&1), None);
        assert_eq!(d.code_range(0..=100), None);
        assert_eq!(d.memory_bytes(), 0);
    }

    #[test]
    fn code_range_clips_to_existing_values() {
        let d = dict(); // 1 3 4 6 8 9
        assert_eq!(d.code_range(3..=8), Some(1..=4));
        assert_eq!(d.code_range(2..=5), Some(1..=2)); // 3, 4
        assert_eq!(d.code_range(0..=100), Some(0..=5));
        assert_eq!(d.code_range(5..=5), None); // nothing in (4, 6)
        assert_eq!(d.code_range(10..=20), None);
        assert_eq!(d.code_range(9..=9), Some(5..=5)); // single value
    }

    #[test]
    fn value_id_range_is_the_pushdown_hook() {
        let d = dict(); // 1 3 4 6 8 9
                        // Equality collapses to a one-code range iff the value exists.
        assert_eq!(d.value_id_range(&4, &4), Some(2..=2));
        assert_eq!(d.value_id_range(&5, &5), None);
        // Ranges clip to present values; bounds need not be present.
        assert_eq!(d.value_id_range(&2, &8), Some(1..=4));
        assert_eq!(d.value_id_range(&0, &100), Some(0..=5));
        // Inverted interval can never match.
        assert_eq!(d.value_id_range(&8, &3), None);
        // code_range delegates to the same hook.
        assert_eq!(d.code_range(2..=8), d.value_id_range(&2, &8));
    }

    #[test]
    fn codes_are_order_preserving() {
        let d = dict();
        let vals = d.values().to_vec();
        for a in &vals {
            for b in &vals {
                let ca = d.code_of(a).unwrap();
                let cb = d.code_of(b).unwrap();
                assert_eq!(a.cmp(b), ca.cmp(&cb), "codes must order like values");
            }
        }
    }

    #[test]
    fn memory_bytes_counts_value_width() {
        let d32 = Dictionary::<u32>::from_sorted_unique(vec![1, 2, 3]);
        assert_eq!(d32.memory_bytes(), 12);
        let d64 = dict();
        assert_eq!(d64.memory_bytes(), 48);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "sorted unique")]
    fn from_sorted_unique_rejects_unsorted_in_debug() {
        let _ = Dictionary::from_sorted_unique(vec![3u64, 1]);
    }
}

//! The append-only delta tail with atomic watermark publication.
//!
//! Section 3's write-optimized delta accepts inserts while readers scan;
//! with the table lock gone, the insert target becomes this log: writers
//! **reserve** a contiguous range of row slots with one `fetch_add`, write
//! every column's values into their slots, then **publish** the rows by
//! advancing the watermark in reservation order. Readers only ever look at
//! rows below the published watermark, so they observe each multi-row
//! batch atomically (no torn batch) and never race a writer's stores —
//! the `Release` publish / `Acquire` watermark read pair carries the
//! value writes.
//!
//! Storage is a chunked spine (chunk `k` holds `1024 << k` rows) so the
//! log grows without ever moving a published row — readers keep raw slices
//! into chunks with no reallocation hazard.
//!
//! A merge **seals** the log: late reservers are turned away (they retry
//! against the successor log of the next generation) and the sealer waits
//! for in-flight reservations to publish, yielding the log's final row
//! count.

use crate::value::Value;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Chunk 0 holds this many rows; chunk `k` holds `ROWS_0 << k`.
const ROWS_0: usize = 1024;
/// 32 chunks cover ~4.4e12 rows — far beyond a single delta's lifetime.
const NUM_CHUNKS: usize = 32;

/// High bit of `reserved`: the log no longer accepts reservations.
const SEALED: usize = 1 << (usize::BITS - 1);

/// First row of chunk `k`.
#[inline]
const fn chunk_start(k: usize) -> usize {
    ROWS_0 * ((1usize << k) - 1)
}

/// `(chunk, offset)` of row `i`.
#[inline]
fn locate(i: usize) -> (usize, usize) {
    let b = i / ROWS_0 + 1;
    let k = (usize::BITS - 1 - b.leading_zeros()) as usize;
    (k, i - chunk_start(k))
}

/// One value slot. Written exactly once, by the thread holding the slot's
/// reservation, strictly before the row is published.
#[repr(transparent)]
struct SlotCell<V>(UnsafeCell<MaybeUninit<V>>);

// SAFETY: slots are plain data raced only in the benign direction — each
// slot is written by exactly one reserver (reservation ranges are disjoint
// by `fetch_add`) and read only after the covering watermark publish
// (`Release`) has been observed (`Acquire`), which orders the write before
// every read.
unsafe impl<V: Send + Sync> Sync for SlotCell<V> {}

/// One column's chunked slot spine.
struct TailColumn<V> {
    chunks: [OnceLock<Box<[SlotCell<V>]>>; NUM_CHUNKS],
}

impl<V: Value> TailColumn<V> {
    fn new() -> Self {
        Self {
            chunks: [const { OnceLock::new() }; NUM_CHUNKS],
        }
    }

    /// The chunk holding row `i`, allocated on first touch.
    fn chunk(&self, k: usize) -> &[SlotCell<V>] {
        self.chunks[k].get_or_init(|| {
            let rows = ROWS_0 << k;
            let mut v = Vec::with_capacity(rows);
            v.resize_with(rows, || SlotCell(UnsafeCell::new(MaybeUninit::uninit())));
            v.into_boxed_slice()
        })
    }

    /// Write row `i`. Caller must hold the reservation covering `i` and
    /// must not have published it yet.
    fn write(&self, i: usize, value: V) {
        let (k, off) = locate(i);
        let cell = &self.chunk(k)[off];
        // SAFETY: reservation exclusivity (see `SlotCell`'s Sync comment).
        unsafe { (*cell.0.get()).write(value) };
    }

    /// Read row `i`; caller must have observed a published watermark > `i`.
    fn read(&self, i: usize) -> V {
        let (k, off) = locate(i);
        let cell = &self.chunk(k)[off];
        // SAFETY: published rows are initialized and never rewritten.
        unsafe { (*cell.0.get()).assume_init_read() }
    }

    /// The column's first `rows` rows as contiguous slices, in row order.
    fn slices(&self, rows: usize) -> Vec<&[V]> {
        let mut out = Vec::new();
        let mut remaining = rows;
        for k in 0..NUM_CHUNKS {
            if remaining == 0 {
                break;
            }
            let n = remaining.min(ROWS_0 << k);
            let chunk = self.chunk(k);
            // SAFETY: `SlotCell<V>` is `repr(transparent)` over
            // `MaybeUninit<V>`; the first `n` slots are published, hence
            // initialized and immutable.
            out.push(unsafe { std::slice::from_raw_parts(chunk.as_ptr().cast::<V>(), n) });
            remaining -= n;
        }
        out
    }

    fn allocated_bytes(&self) -> usize {
        (0..NUM_CHUNKS)
            .filter(|&k| self.chunks[k].get().is_some())
            .map(|k| (ROWS_0 << k) * std::mem::size_of::<V>())
            .sum()
    }
}

/// Error returned by [`TailLog::reserve`] once the log is sealed: the
/// caller should re-pin the table generation and retry against the fresh
/// log installed by the merge freeze.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailSealed;

/// A multi-column append-only row log; see the module docs for the
/// reserve → write → publish protocol.
pub struct TailLog<V> {
    /// Global tuple id of slot 0 (rows before it live in the generation's
    /// main / frozen / pending partitions).
    base: usize,
    cols: Box<[TailColumn<V>]>,
    /// Low bits: slots handed out. High bit: [`SEALED`]. Post-seal
    /// `fetch_add`s may pollute the low bits; the true final count is the
    /// value [`Self::seal`] captures from its `fetch_or`.
    reserved: AtomicUsize,
    /// Rows visible to readers; advanced in reservation order.
    published: AtomicUsize,
}

impl<V: Value> TailLog<V> {
    /// An empty log whose slot 0 is global row `base`.
    pub fn new(num_columns: usize, base: usize) -> Self {
        Self {
            base,
            cols: (0..num_columns).map(|_| TailColumn::new()).collect(),
            reserved: AtomicUsize::new(0),
            published: AtomicUsize::new(0),
        }
    }

    /// Global tuple id of the log's first row.
    #[inline]
    pub fn base(&self) -> usize {
        self.base
    }

    /// Rows visible to readers. `Acquire`: pairs with the `Release`
    /// publish, so all value writes of visible rows are visible too.
    #[inline]
    pub fn published(&self) -> usize {
        self.published.load(Ordering::Acquire)
    }

    /// Reserve `n > 0` row slots. On success the caller **must** write
    /// every column of every reserved row and then publish (the guard
    /// publishes default values on panic so the log never wedges).
    pub fn reserve(&self, n: usize) -> Result<TailReservation<'_, V>, TailSealed> {
        debug_assert!(n > 0, "reserve at least one row");
        let prev = self.reserved.fetch_add(n, Ordering::Relaxed);
        if prev & SEALED != 0 {
            // Sealed before we got here; our low-bit bump is dead weight
            // nobody reads (seal already captured the true count).
            return Err(TailSealed);
        }
        Ok(TailReservation {
            log: self,
            start: prev,
            len: n,
            published: false,
        })
    }

    /// Seal the log and wait for every outstanding reservation to
    /// publish. Returns the final row count. Idempotent only in the sense
    /// that the merge gate serializes callers; a second seal would read a
    /// polluted count, so the table never seals a log twice.
    pub fn seal(&self) -> usize {
        let count = self.reserved.fetch_or(SEALED, Ordering::SeqCst) & !SEALED;
        while self.published.load(Ordering::Acquire) < count {
            std::thread::yield_now();
        }
        count
    }

    /// True once [`Self::seal`] has been called: the log accepts no more
    /// reservations (recovery uses this to tell a live tail from one whose
    /// freeze completed before the crash).
    #[inline]
    pub fn is_sealed(&self) -> bool {
        self.reserved.load(Ordering::Relaxed) & SEALED != 0
    }

    /// Value of tail row `i` in column `col`. Caller must have observed
    /// `published() > i`.
    #[inline]
    pub fn read(&self, col: usize, i: usize) -> V {
        self.cols[col].read(i)
    }

    /// Column `col`'s first `rows` rows as contiguous slices in row order
    /// (the chunked spine means a published prefix spans up to
    /// `log2(rows / 1024)` slices). `rows` must not exceed a published
    /// watermark the caller observed.
    pub fn col_slices(&self, col: usize, rows: usize) -> Vec<&[V]> {
        self.cols[col].slices(rows)
    }

    /// Heap bytes of allocated chunks across all columns.
    pub fn memory_bytes(&self) -> usize {
        self.cols.iter().map(|c| c.allocated_bytes()).sum()
    }
}

/// A writer's exclusive claim on rows `start .. start + len` of a
/// [`TailLog`]; see [`TailLog::reserve`].
pub struct TailReservation<'a, V: Value> {
    log: &'a TailLog<V>,
    start: usize,
    len: usize,
    published: bool,
}

impl<V: Value> TailReservation<'_, V> {
    /// First reserved tail row (add [`TailLog::base`] for the global id).
    #[inline]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of reserved rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the reservation covers no rows (never constructed).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write `value` into column `col` of reserved row `offset`.
    #[inline]
    pub fn set(&self, col: usize, offset: usize, value: V) {
        assert!(offset < self.len, "offset {offset} outside reservation");
        self.log.cols[col].write(self.start + offset, value);
    }

    /// Publish the reserved rows, waiting for earlier reservations to
    /// publish first (the watermark moves strictly in reservation order,
    /// which is what makes a multi-row batch atomic to readers).
    pub fn publish(mut self) {
        self.publish_in_order();
    }

    fn publish_in_order(&mut self) {
        // Brief spin for the common in-order case, then yield: when cores
        // are oversubscribed the earlier reserver may be descheduled
        // mid-write, and a hard spin here would starve it of the very
        // timeslice it needs to publish (a convoy that livelocks a
        // single-core box under many writers).
        let mut spins = 0u32;
        while self
            .log
            .published
            .compare_exchange_weak(
                self.start,
                self.start + self.len,
                Ordering::Release,
                Ordering::Relaxed,
            )
            .is_err()
        {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        self.published = true;
    }
}

impl<V: Value> Drop for TailReservation<'_, V> {
    fn drop(&mut self) {
        if !self.published {
            // Unwinding mid-write: fill the claim with defaults and
            // publish so later reservations (and the seal) don't wedge on
            // a hole in the watermark order.
            for col in self.log.cols.iter() {
                for i in 0..self.len {
                    col.write(self.start + i, V::default());
                }
            }
            self.publish_in_order();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn chunk_geometry() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(1023), (0, 1023));
        assert_eq!(locate(1024), (1, 0));
        assert_eq!(locate(3071), (1, 2047));
        assert_eq!(locate(3072), (2, 0));
        assert_eq!(locate(chunk_start(5)), (5, 0));
    }

    #[test]
    fn reserve_write_publish_read_roundtrip() {
        let log: TailLog<u64> = TailLog::new(2, 100);
        let r = log.reserve(3).unwrap();
        assert_eq!(r.start(), 0);
        for i in 0..3 {
            r.set(0, i, i as u64);
            r.set(1, i, i as u64 * 10);
        }
        assert_eq!(log.published(), 0, "unpublished rows are invisible");
        r.publish();
        assert_eq!(log.published(), 3);
        assert_eq!(log.read(1, 2), 20);
        assert_eq!(log.base(), 100);
        let slices = log.col_slices(0, 3);
        assert_eq!(slices, vec![&[0u64, 1, 2][..]]);
    }

    #[test]
    fn slices_span_chunks() {
        let log: TailLog<u64> = TailLog::new(1, 0);
        let n = 5_000;
        let r = log.reserve(n).unwrap();
        for i in 0..n {
            r.set(0, i, i as u64);
        }
        r.publish();
        let slices = log.col_slices(0, n);
        assert_eq!(slices.len(), 3, "1024 + 2048 + remainder");
        assert_eq!(slices.iter().map(|s| s.len()).sum::<usize>(), n);
        let flat: Vec<u64> = slices.concat();
        assert_eq!(flat, (0..n as u64).collect::<Vec<_>>());
        assert!(log.memory_bytes() >= n * 8);
    }

    #[test]
    fn seal_rejects_late_reservations() {
        let log: TailLog<u64> = TailLog::new(1, 0);
        let r = log.reserve(2).unwrap();
        r.set(0, 0, 7);
        r.set(0, 1, 8);
        r.publish();
        assert_eq!(log.seal(), 2);
        assert_eq!(log.reserve(1).err(), Some(TailSealed));
        assert_eq!(log.published(), 2, "sealed log still serves reads");
        assert_eq!(log.read(0, 1), 8);
    }

    #[test]
    fn publish_is_in_reservation_order() {
        // Reserve from many threads, publish out of order of completion;
        // the watermark must only ever expose fully-written prefixes.
        let log: TailLog<u64> = TailLog::new(1, 0);
        let max_seen = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..200 {
                        let r = log.reserve(3).unwrap();
                        for i in 0..3 {
                            r.set(0, i, (r.start() + i) as u64);
                        }
                        r.publish();
                    }
                });
            }
            s.spawn(|| loop {
                let n = log.published();
                max_seen.fetch_max(n, Ordering::Relaxed);
                // Every visible row holds its own index: no torn batch.
                for i in (0..n).step_by(97) {
                    assert_eq!(log.read(0, i), i as u64);
                }
                if n == 8 * 200 * 3 {
                    break;
                }
            });
        });
        assert_eq!(log.seal(), 4_800);
    }

    #[test]
    fn dropped_reservation_fills_defaults_and_unwedges() {
        let log: TailLog<u64> = TailLog::new(1, 0);
        {
            let r = log.reserve(2).unwrap();
            r.set(0, 0, 5);
            // dropped without publish (panic path)
        }
        let r = log.reserve(1).unwrap();
        r.set(0, 0, 9);
        r.publish();
        assert_eq!(log.seal(), 3);
        assert_eq!(log.read(0, 1), 0, "unpublished slot was defaulted");
        assert_eq!(log.read(0, 2), 9);
    }
}

//! Row validity for the insert-only model.
//!
//! "Updates are always modeled as new inserts and deletes only invalidate
//! rows. We keep the insertion order of tuples and only the lastly inserted
//! version is valid." (Section 3) Invalid rows stay in storage — the history
//! is queryable — and survive merges unchanged, since the merge concatenates
//! partitions without reordering.
//!
//! Two representations share the bit layout: the plain [`ValidityBitmap`]
//! (single-owner, used by the offline table and by snapshots) and the
//! [`AtomicValidity`] (shared, lock-free, used by the online table where
//! inserts set bits concurrently with deletes clearing them and snapshots
//! copying prefixes).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A growable bitmap: bit `i` set means row `i` is valid (visible).
#[derive(Clone, Debug, Default)]
pub struct ValidityBitmap {
    words: Vec<u64>,
    len: usize,
    valid_count: usize,
}

impl ValidityBitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// A bitmap of `n` valid rows (bulk-load path).
    pub fn all_valid(n: usize) -> Self {
        let mut words = vec![u64::MAX; n.div_ceil(64)];
        if !n.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
        Self {
            words,
            len: n,
            valid_count: n,
        }
    }

    /// Number of rows tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no rows are tracked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of currently valid rows.
    #[inline]
    pub fn valid_count(&self) -> usize {
        self.valid_count
    }

    /// Append one row, valid.
    pub fn push_valid(&mut self) {
        let i = self.len;
        self.len += 1;
        if self.words.len() * 64 < self.len {
            self.words.push(0);
        }
        self.words[i / 64] |= 1u64 << (i % 64);
        self.valid_count += 1;
    }

    /// Is row `i` valid?
    ///
    /// # Panics
    /// If `i` is out of range.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        assert!(i < self.len, "row {i} out of range (len {})", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Invalidate row `i` (idempotent) — the "delete"/"old version" path.
    pub fn invalidate(&mut self, i: usize) {
        assert!(i < self.len, "row {i} out of range (len {})", self.len);
        let mask = 1u64 << (i % 64);
        if self.words[i / 64] & mask != 0 {
            self.words[i / 64] &= !mask;
            self.valid_count -= 1;
        }
    }

    /// Iterate the indices of valid rows.
    pub fn valid_rows(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.words[i / 64] & (1u64 << (i % 64)) != 0)
    }

    /// The backing words (64 row bits each; the last word is masked to
    /// `len`). The checkpoint writer persists these verbatim.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild a bitmap from persisted `words` covering `len` rows.
    /// Bits above `len` in the final word are masked off.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        words.truncate(len.div_ceil(64));
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        let valid_count = words.iter().map(|w| w.count_ones() as usize).sum();
        Self {
            words,
            len,
            valid_count,
        }
    }
}

/// Words (of 64 rows each) in chunk 0 of an [`AtomicValidity`]; chunk `k`
/// holds `WORDS_0 << k` words. Mirrors the tail log's row-chunk geometry
/// (1024 rows = 16 words) so both spines grow in lock step.
const WORDS_0: usize = 16;
const NUM_CHUNKS: usize = 32;

#[inline]
const fn chunk_start(k: usize) -> usize {
    WORDS_0 * ((1usize << k) - 1)
}

/// `(chunk, offset)` of word `w`.
#[inline]
fn locate(w: usize) -> (usize, usize) {
    let b = w / WORDS_0 + 1;
    let k = (usize::BITS - 1 - b.leading_zeros()) as usize;
    (k, w - chunk_start(k))
}

/// A concurrently updatable validity bitmap over the online table's global
/// tuple ids. Bits live in a chunked spine of atomic words that never
/// moves, so readers and writers share it with no lock:
///
/// * inserts set a row's bit **before** publishing the row's watermark —
///   any row a reader can see already has its bit set (unless deleted);
/// * deletes clear bits (idempotently) and maintain a valid-row counter;
/// * snapshots copy a word prefix and mask it to the published row count,
///   hiding set bits of rows above the watermark.
///
/// Merges never touch it: global tuple ids are stable across the merge
/// (Section 3's "the implicit offset of a tuple is always valid"), which
/// is what lets validity live outside the swapped generation entirely.
#[derive(Default)]
pub struct AtomicValidity {
    chunks: [OnceLock<Box<[AtomicU64]>>; NUM_CHUNKS],
    valid_count: AtomicUsize,
}

impl AtomicValidity {
    /// An empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// A bitmap with rows `0..n` valid (bulk-load path).
    pub fn all_valid(n: usize) -> Self {
        let v = Self::new();
        for i in 0..n {
            v.set_valid(i);
        }
        v
    }

    /// The word holding row bit `i`, allocating its chunk on first touch.
    fn word(&self, i: usize) -> &AtomicU64 {
        let (k, off) = locate(i / 64);
        let chunk = self.chunks[k].get_or_init(|| {
            let words = WORDS_0 << k;
            let mut v = Vec::with_capacity(words);
            v.resize_with(words, || AtomicU64::new(0));
            v.into_boxed_slice()
        });
        &chunk[off]
    }

    /// Mark row `i` valid (the insert path; called before the row's
    /// watermark publish, so ordering piggybacks on that `Release`).
    pub fn set_valid(&self, i: usize) {
        let prev = self.word(i).fetch_or(1u64 << (i % 64), Ordering::Relaxed);
        if prev & (1u64 << (i % 64)) == 0 {
            self.valid_count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Invalidate row `i` (idempotent) — the delete / old-version path.
    pub fn invalidate(&self, i: usize) {
        let prev = self
            .word(i)
            .fetch_and(!(1u64 << (i % 64)), Ordering::Relaxed);
        if prev & (1u64 << (i % 64)) != 0 {
            self.valid_count.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Is row `i` valid? The caller is responsible for only asking about
    /// rows below a published watermark.
    pub fn is_valid(&self, i: usize) -> bool {
        self.word(i).load(Ordering::Relaxed) & (1u64 << (i % 64)) != 0
    }

    /// Rows currently valid. Exact when quiescent; during concurrent
    /// inserts it may transiently include rows whose watermark publish is
    /// still in flight (their bits are set first).
    pub fn valid_count(&self) -> usize {
        self.valid_count.load(Ordering::Relaxed)
    }

    /// A plain-bitmap copy of rows `0..n`, with the last word masked to
    /// `n` — bits of not-yet-published rows above the watermark are set
    /// before publication and must not leak into the snapshot.
    pub fn snapshot_prefix(&self, n: usize) -> ValidityBitmap {
        let n_words = n.div_ceil(64);
        let mut words = Vec::with_capacity(n_words);
        let mut valid_count = 0usize;
        for w in 0..n_words {
            let mut word = self.word(w * 64).load(Ordering::Relaxed);
            if (w + 1) * 64 > n {
                word &= (1u64 << (n % 64)) - 1;
            }
            valid_count += word.count_ones() as usize;
            words.push(word);
        }
        ValidityBitmap {
            words,
            len: n,
            valid_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_check() {
        let mut v = ValidityBitmap::new();
        for _ in 0..130 {
            v.push_valid();
        }
        assert_eq!(v.len(), 130);
        assert_eq!(v.valid_count(), 130);
        assert!(v.is_valid(0));
        assert!(v.is_valid(129));
    }

    #[test]
    fn invalidate_is_idempotent() {
        let mut v = ValidityBitmap::all_valid(10);
        v.invalidate(3);
        v.invalidate(3);
        assert_eq!(v.valid_count(), 9);
        assert!(!v.is_valid(3));
        assert!(v.is_valid(2));
    }

    #[test]
    fn all_valid_partial_last_word() {
        let v = ValidityBitmap::all_valid(70);
        assert_eq!(v.valid_count(), 70);
        assert!(v.is_valid(69));
        assert_eq!(v.valid_rows().count(), 70);
    }

    #[test]
    fn valid_rows_skips_invalidated() {
        let mut v = ValidityBitmap::all_valid(8);
        v.invalidate(1);
        v.invalidate(5);
        let rows: Vec<usize> = v.valid_rows().collect();
        assert_eq!(rows, vec![0, 2, 3, 4, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_check_panics() {
        let v = ValidityBitmap::all_valid(4);
        v.is_valid(4);
    }

    #[test]
    fn empty_bitmap() {
        let v = ValidityBitmap::new();
        assert!(v.is_empty());
        assert_eq!(v.valid_rows().count(), 0);
    }

    #[test]
    fn words_round_trip() {
        let mut v = ValidityBitmap::all_valid(100);
        v.invalidate(17);
        v.invalidate(99);
        let back = ValidityBitmap::from_words(v.words().to_vec(), v.len());
        assert_eq!(back.len(), 100);
        assert_eq!(back.valid_count(), 98);
        assert!(!back.is_valid(17));
        assert!(back.is_valid(18));
    }

    #[test]
    fn from_words_masks_stray_high_bits() {
        let back = ValidityBitmap::from_words(vec![u64::MAX], 10);
        assert_eq!(back.valid_count(), 10);
        assert!(back.is_valid(9));
    }

    #[test]
    fn atomic_word_geometry() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(15), (0, 15));
        assert_eq!(locate(16), (1, 0));
        assert_eq!(locate(47), (1, 31));
        assert_eq!(locate(48), (2, 0));
    }

    #[test]
    fn atomic_set_invalidate_count() {
        let v = AtomicValidity::new();
        for i in 0..200 {
            v.set_valid(i);
        }
        assert_eq!(v.valid_count(), 200);
        v.set_valid(7); // idempotent
        assert_eq!(v.valid_count(), 200);
        v.invalidate(7);
        v.invalidate(7);
        assert_eq!(v.valid_count(), 199);
        assert!(!v.is_valid(7));
        assert!(v.is_valid(8));
    }

    #[test]
    fn atomic_all_valid_matches_plain() {
        let v = AtomicValidity::all_valid(70);
        assert_eq!(v.valid_count(), 70);
        let snap = v.snapshot_prefix(70);
        assert_eq!(snap.valid_count(), 70);
        assert!(snap.is_valid(69));
    }

    #[test]
    fn snapshot_prefix_masks_rows_above_the_watermark() {
        let v = AtomicValidity::new();
        // Rows 0..100 published; rows 100..130 written-but-unpublished
        // (their bits are set, the snapshot must not see them).
        for i in 0..130 {
            v.set_valid(i);
        }
        v.invalidate(3);
        let snap = v.snapshot_prefix(100);
        assert_eq!(snap.len(), 100);
        assert_eq!(snap.valid_count(), 99);
        assert!(!snap.is_valid(3));
        assert!(snap.is_valid(99));
        // Asking about row 100 panics — it's outside the snapshot.
        assert!(std::panic::catch_unwind(|| snap.is_valid(100)).is_err());
    }

    #[test]
    fn atomic_bits_cross_chunk_boundaries() {
        let v = AtomicValidity::new();
        for i in [0usize, 1023, 1024, 3071, 3072, 10_000] {
            v.set_valid(i);
            assert!(v.is_valid(i));
        }
        assert_eq!(v.valid_count(), 6);
        let snap = v.snapshot_prefix(10_001);
        assert_eq!(snap.valid_count(), 6);
    }
}

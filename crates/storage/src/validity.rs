//! Row validity for the insert-only model.
//!
//! "Updates are always modeled as new inserts and deletes only invalidate
//! rows. We keep the insertion order of tuples and only the lastly inserted
//! version is valid." (Section 3) Invalid rows stay in storage — the history
//! is queryable — and survive merges unchanged, since the merge concatenates
//! partitions without reordering.

/// A growable bitmap: bit `i` set means row `i` is valid (visible).
#[derive(Clone, Debug, Default)]
pub struct ValidityBitmap {
    words: Vec<u64>,
    len: usize,
    valid_count: usize,
}

impl ValidityBitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// A bitmap of `n` valid rows (bulk-load path).
    pub fn all_valid(n: usize) -> Self {
        let mut words = vec![u64::MAX; n.div_ceil(64)];
        if !n.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
        Self {
            words,
            len: n,
            valid_count: n,
        }
    }

    /// Number of rows tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no rows are tracked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of currently valid rows.
    #[inline]
    pub fn valid_count(&self) -> usize {
        self.valid_count
    }

    /// Append one row, valid.
    pub fn push_valid(&mut self) {
        let i = self.len;
        self.len += 1;
        if self.words.len() * 64 < self.len {
            self.words.push(0);
        }
        self.words[i / 64] |= 1u64 << (i % 64);
        self.valid_count += 1;
    }

    /// Is row `i` valid?
    ///
    /// # Panics
    /// If `i` is out of range.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        assert!(i < self.len, "row {i} out of range (len {})", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Invalidate row `i` (idempotent) — the "delete"/"old version" path.
    pub fn invalidate(&mut self, i: usize) {
        assert!(i < self.len, "row {i} out of range (len {})", self.len);
        let mask = 1u64 << (i % 64);
        if self.words[i / 64] & mask != 0 {
            self.words[i / 64] &= !mask;
            self.valid_count -= 1;
        }
    }

    /// Iterate the indices of valid rows.
    pub fn valid_rows(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.words[i / 64] & (1u64 << (i % 64)) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_check() {
        let mut v = ValidityBitmap::new();
        for _ in 0..130 {
            v.push_valid();
        }
        assert_eq!(v.len(), 130);
        assert_eq!(v.valid_count(), 130);
        assert!(v.is_valid(0));
        assert!(v.is_valid(129));
    }

    #[test]
    fn invalidate_is_idempotent() {
        let mut v = ValidityBitmap::all_valid(10);
        v.invalidate(3);
        v.invalidate(3);
        assert_eq!(v.valid_count(), 9);
        assert!(!v.is_valid(3));
        assert!(v.is_valid(2));
    }

    #[test]
    fn all_valid_partial_last_word() {
        let v = ValidityBitmap::all_valid(70);
        assert_eq!(v.valid_count(), 70);
        assert!(v.is_valid(69));
        assert_eq!(v.valid_rows().count(), 70);
    }

    #[test]
    fn valid_rows_skips_invalidated() {
        let mut v = ValidityBitmap::all_valid(8);
        v.invalidate(1);
        v.invalidate(5);
        let rows: Vec<usize> = v.valid_rows().collect();
        assert_eq!(rows, vec![0, 2, 3, 4, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_check_panics() {
        let v = ValidityBitmap::all_valid(4);
        v.is_valid(4);
    }

    #[test]
    fn empty_bitmap() {
        let v = ValidityBitmap::new();
        assert!(v.is_empty());
        assert_eq!(v.valid_rows().count(), 0);
    }
}

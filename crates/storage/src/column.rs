//! Dynamically typed columns, so a [`crate::Table`] can mix value widths
//! (the paper's tables mix 4/8/16-byte columns; Figure 3's tables have up to
//! 399 columns of varying types).

use crate::attribute::Attribute;
use crate::value::{Value, V16};
use std::fmt;

/// The storage type of a column — one of the paper's evaluated value-lengths.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 4-byte values (`E_j = 4`).
    U32,
    /// 8-byte values (`E_j = 8`, the paper's "common practical scenario").
    U64,
    /// 16-byte values (`E_j = 16`).
    V16,
}

impl ColumnType {
    /// The uncompressed value-length `E_j` in bytes.
    pub fn value_bytes(self) -> usize {
        match self {
            ColumnType::U32 => 4,
            ColumnType::U64 => 8,
            ColumnType::V16 => 16,
        }
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::U32 => write!(f, "u32"),
            ColumnType::U64 => write!(f, "u64"),
            ColumnType::V16 => write!(f, "v16"),
        }
    }
}

/// A dynamically typed value for row-level APIs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AnyValue {
    /// 4-byte value.
    U32(u32),
    /// 8-byte value.
    U64(u64),
    /// 16-byte value.
    V16(V16),
}

impl AnyValue {
    /// The column type this value belongs to.
    pub fn column_type(&self) -> ColumnType {
        match self {
            AnyValue::U32(_) => ColumnType::U32,
            AnyValue::U64(_) => ColumnType::U64,
            AnyValue::V16(_) => ColumnType::V16,
        }
    }

    /// Lossy 64-bit projection (checksums, aggregates).
    pub fn to_u64_lossy(&self) -> u64 {
        match self {
            AnyValue::U32(v) => *v as u64,
            AnyValue::U64(v) => *v,
            AnyValue::V16(v) => v.to_u64_lossy(),
        }
    }

    /// Derive a value of `ty` from a seed (generator support).
    pub fn from_seed(ty: ColumnType, seed: u64) -> Self {
        match ty {
            ColumnType::U32 => AnyValue::U32(u32::from_seed(seed)),
            ColumnType::U64 => AnyValue::U64(u64::from_seed(seed)),
            ColumnType::V16 => AnyValue::V16(V16::from_seed(seed)),
        }
    }
}

impl From<u32> for AnyValue {
    fn from(v: u32) -> Self {
        AnyValue::U32(v)
    }
}

impl From<u64> for AnyValue {
    fn from(v: u64) -> Self {
        AnyValue::U64(v)
    }
}

impl From<V16> for AnyValue {
    fn from(v: V16) -> Self {
        AnyValue::V16(v)
    }
}

/// A column of any supported type: a typed [`Attribute`] behind an enum.
pub enum Column {
    /// 4-byte column.
    U32(Attribute<u32>),
    /// 8-byte column.
    U64(Attribute<u64>),
    /// 16-byte column.
    V16(Attribute<V16>),
}

impl Column {
    /// An empty column of the given type.
    pub fn new(ty: ColumnType) -> Self {
        match ty {
            ColumnType::U32 => Column::U32(Attribute::empty()),
            ColumnType::U64 => Column::U64(Attribute::empty()),
            ColumnType::V16 => Column::V16(Attribute::empty()),
        }
    }

    /// This column's type.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Column::U32(_) => ColumnType::U32,
            Column::U64(_) => ColumnType::U64,
            Column::V16(_) => ColumnType::V16,
        }
    }

    /// Append `value`; returns the global tuple id or `None` on a type
    /// mismatch.
    pub fn append(&mut self, value: AnyValue) -> Option<usize> {
        match (self, value) {
            (Column::U32(a), AnyValue::U32(v)) => Some(a.append(v)),
            (Column::U64(a), AnyValue::U64(v)) => Some(a.append(v)),
            (Column::V16(a), AnyValue::V16(v)) => Some(a.append(v)),
            _ => None,
        }
    }

    /// Value of global tuple `i`.
    pub fn get(&self, i: usize) -> AnyValue {
        match self {
            Column::U32(a) => AnyValue::U32(a.get(i)),
            Column::U64(a) => AnyValue::U64(a.get(i)),
            Column::V16(a) => AnyValue::V16(a.get(i)),
        }
    }

    /// Total tuples (main + delta).
    pub fn len(&self) -> usize {
        match self {
            Column::U32(a) => a.len(),
            Column::U64(a) => a.len(),
            Column::V16(a) => a.len(),
        }
    }

    /// True if the column holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tuples in the main partition.
    pub fn main_len(&self) -> usize {
        match self {
            Column::U32(a) => a.main().len(),
            Column::U64(a) => a.main().len(),
            Column::V16(a) => a.main().len(),
        }
    }

    /// Tuples in the delta partition.
    pub fn delta_len(&self) -> usize {
        match self {
            Column::U32(a) => a.delta().len(),
            Column::U64(a) => a.delta().len(),
            Column::V16(a) => a.delta().len(),
        }
    }

    /// `N_D / N_M` for the merge trigger.
    pub fn delta_fraction(&self) -> f64 {
        match self {
            Column::U32(a) => a.delta_fraction(),
            Column::U64(a) => a.delta_fraction(),
            Column::V16(a) => a.delta_fraction(),
        }
    }

    /// Heap bytes across both partitions.
    pub fn memory_bytes(&self) -> usize {
        match self {
            Column::U32(a) => a.memory_bytes(),
            Column::U64(a) => a.memory_bytes(),
            Column::V16(a) => a.memory_bytes(),
        }
    }

    /// Typed access for `u32` columns.
    pub fn as_u32(&self) -> Option<&Attribute<u32>> {
        if let Column::U32(a) = self {
            Some(a)
        } else {
            None
        }
    }

    /// Typed access for `u64` columns.
    pub fn as_u64(&self) -> Option<&Attribute<u64>> {
        if let Column::U64(a) = self {
            Some(a)
        } else {
            None
        }
    }

    /// Typed access for 16-byte columns.
    pub fn as_v16(&self) -> Option<&Attribute<V16>> {
        if let Column::V16(a) = self {
            Some(a)
        } else {
            None
        }
    }

    /// Typed mutable access for `u32` columns.
    pub fn as_u32_mut(&mut self) -> Option<&mut Attribute<u32>> {
        if let Column::U32(a) = self {
            Some(a)
        } else {
            None
        }
    }

    /// Typed mutable access for `u64` columns.
    pub fn as_u64_mut(&mut self) -> Option<&mut Attribute<u64>> {
        if let Column::U64(a) = self {
            Some(a)
        } else {
            None
        }
    }

    /// Typed mutable access for 16-byte columns.
    pub fn as_v16_mut(&mut self) -> Option<&mut Attribute<V16>> {
        if let Column::V16(a) = self {
            Some(a)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_get_all_types() {
        let mut c32 = Column::new(ColumnType::U32);
        let mut c64 = Column::new(ColumnType::U64);
        let mut c16 = Column::new(ColumnType::V16);
        assert_eq!(c32.append(AnyValue::U32(7)), Some(0));
        assert_eq!(c64.append(AnyValue::U64(8)), Some(0));
        assert_eq!(c16.append(AnyValue::V16(V16::from_seed(9))), Some(0));
        assert_eq!(c32.get(0), AnyValue::U32(7));
        assert_eq!(c64.get(0), AnyValue::U64(8));
        assert_eq!(c16.get(0), AnyValue::V16(V16::from_seed(9)));
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let mut c = Column::new(ColumnType::U32);
        assert_eq!(c.append(AnyValue::U64(1)), None);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn value_bytes_match_paper_lengths() {
        assert_eq!(ColumnType::U32.value_bytes(), 4);
        assert_eq!(ColumnType::U64.value_bytes(), 8);
        assert_eq!(ColumnType::V16.value_bytes(), 16);
    }

    #[test]
    fn from_seed_respects_type() {
        for ty in [ColumnType::U32, ColumnType::U64, ColumnType::V16] {
            let v = AnyValue::from_seed(ty, 42);
            assert_eq!(v.column_type(), ty);
        }
    }

    #[test]
    fn typed_accessors() {
        let mut c = Column::new(ColumnType::U64);
        c.append(AnyValue::U64(5));
        assert!(c.as_u64().is_some());
        assert!(c.as_u32().is_none());
        assert!(c.as_v16().is_none());
        assert_eq!(c.as_u64().unwrap().get(0), 5);
    }
}

//! The read-optimized, dictionary-compressed main partition (`M^j`).

use crate::dictionary::Dictionary;
use crate::value::Value;
use hyrise_bitpack::{bits_for, BitPackedVec};

/// One column's main partition: a sorted [`Dictionary`] plus the per-tuple
/// codes bit-packed at `E_C = max(1, ceil(log2 |U_M|))` bits.
///
/// "Values in the tuples are replaced by encoded values from the dictionary
/// ... the compressed value for a given value is its position in the
/// dictionary, stored using the appropriate number of bits." (Sections 3, 4.1)
#[derive(Clone, Debug)]
pub struct MainPartition<V> {
    dict: Dictionary<V>,
    codes: BitPackedVec,
}

impl<V: Value> Default for MainPartition<V> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<V: Value> MainPartition<V> {
    /// An empty main partition (fresh tables start with everything in delta).
    pub fn empty() -> Self {
        Self {
            dict: Dictionary::empty(),
            codes: BitPackedVec::new(1),
        }
    }

    /// Bulk-load from raw values: builds the dictionary (sort + dedup) and
    /// encodes every tuple. This models the initial population of the
    /// read-optimized store; steady-state growth goes through the merge.
    pub fn from_values(values: &[V]) -> Self {
        let dict = Dictionary::from_unsorted(values.to_vec());
        let bits = bits_for(dict.len());
        let mut codes = BitPackedVec::with_capacity(bits, values.len());
        for v in values {
            let code = dict
                .code_of(v)
                .expect("value must be in freshly built dictionary");
            codes.push(code as u64);
        }
        Self { dict, codes }
    }

    /// Assemble from parts — the merge's output path. `codes` must index
    /// into `dict`.
    ///
    /// # Panics
    /// In debug builds, if any code is out of dictionary range.
    pub fn from_parts(dict: Dictionary<V>, codes: BitPackedVec) -> Self {
        debug_assert!(
            codes.iter().all(|c| (c as usize) < dict.len().max(1)),
            "all codes must be valid dictionary indices"
        );
        Self { dict, codes }
    }

    /// Dissolve into dictionary and packed codes — the buffer-recycling
    /// hook: a retired main partition's two big allocations (sorted value
    /// vector and packed word buffer) can be fed back into the next merge's
    /// scratch arena instead of being freed.
    pub fn into_parts(self) -> (Dictionary<V>, BitPackedVec) {
        (self.dict, self.codes)
    }

    /// Number of tuples — the paper's `N_M`.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if the partition holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The dictionary `U_M`.
    #[inline]
    pub fn dictionary(&self) -> &Dictionary<V> {
        &self.dict
    }

    /// The compressed value-length `E_C` in bits.
    #[inline]
    pub fn code_bits(&self) -> u8 {
        self.codes.bits()
    }

    /// The bit-packed code of tuple `i`.
    #[inline]
    pub fn code(&self, i: usize) -> u32 {
        self.codes.get(i) as u32
    }

    /// The uncompressed (materialized) value of tuple `i`: a code read plus a
    /// dictionary array access.
    #[inline]
    pub fn get(&self, i: usize) -> V {
        self.dict.value_at(self.codes.get(i) as u32)
    }

    /// Iterate the raw codes in tuple order (the sequential scan path).
    pub fn codes(&self) -> impl Iterator<Item = u64> + '_ {
        self.codes.iter()
    }

    /// Borrow the underlying bit-packed vector (merge input).
    pub fn packed_codes(&self) -> &BitPackedVec {
        &self.codes
    }

    /// Fraction of unique values, the paper's `lambda_M = |U_M| / N_M`
    /// (0 for an empty partition).
    pub fn unique_fraction(&self) -> f64 {
        if self.codes.is_empty() {
            0.0
        } else {
            self.dict.len() as f64 / self.codes.len() as f64
        }
    }

    /// Heap bytes: packed codes plus dictionary.
    pub fn memory_bytes(&self) -> usize {
        self.codes.packed_bytes() + self.dict.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 5 main partition:
    /// values hotel delta frank delta (as integers), dictionary of 6.
    fn figure5_main() -> MainPartition<u64> {
        // dictionary: apple=1 charlie=3 delta=4 frank=6 hotel=8 inbox=9
        // partition rows: hotel delta frank delta + the remaining dict values
        // so all 6 dictionary entries are referenced.
        MainPartition::from_values(&[8, 4, 6, 4, 1, 3, 9])
    }

    #[test]
    fn bulk_load_encodes_correctly() {
        let m = figure5_main();
        assert_eq!(m.len(), 7);
        assert_eq!(m.dictionary().len(), 6);
        assert_eq!(m.code_bits(), 3, "6 unique values need 3 bits (Figure 5)");
        assert_eq!(m.get(0), 8);
        assert_eq!(m.get(1), 4);
        assert_eq!(m.get(3), 4);
        // hotel is the 5th of 6 sorted values -> code 4, as in Figure 5/6.
        assert_eq!(m.code(0), 4);
    }

    #[test]
    fn empty_partition() {
        let m: MainPartition<u32> = MainPartition::empty();
        assert!(m.is_empty());
        assert_eq!(m.dictionary().len(), 0);
        assert_eq!(m.unique_fraction(), 0.0);
        assert_eq!(m.memory_bytes(), 0);
    }

    #[test]
    fn roundtrip_get_matches_source() {
        let vals: Vec<u64> = (0..500).map(|i| (i * 37) % 101).collect();
        let m = MainPartition::from_values(&vals);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(m.get(i), *v, "tuple {i}");
        }
        assert_eq!(m.dictionary().len(), 101);
        assert_eq!(m.code_bits(), 7);
    }

    #[test]
    fn unique_fraction_lambda() {
        let vals: Vec<u64> = (0..1000).map(|i| i % 100).collect();
        let m = MainPartition::from_values(&vals);
        assert!((m.unique_fraction() - 0.1).abs() < 1e-9, "lambda_M = 10%");
    }

    #[test]
    fn codes_iterator_streams_in_order() {
        let vals: Vec<u64> = vec![5, 1, 5, 9];
        let m = MainPartition::from_values(&vals);
        let codes: Vec<u64> = m.codes().collect();
        assert_eq!(codes, vec![1, 0, 1, 2]);
    }

    #[test]
    fn memory_accounting() {
        let vals: Vec<u64> = (0..1024).collect(); // 1024 unique, 10-bit codes
        let m = MainPartition::from_values(&vals);
        assert_eq!(m.code_bits(), 10);
        // 1024 * 10 bits = 10240 bits = 160 words = 1280 bytes + dict 8192.
        assert_eq!(m.memory_bytes(), 1280 + 8192);
    }

    #[test]
    fn single_value_column_uses_one_bit() {
        let vals = vec![7u64; 100];
        let m = MainPartition::from_values(&vals);
        assert_eq!(m.dictionary().len(), 1);
        assert_eq!(m.code_bits(), 1, "|U|=1 clamps to one bit");
        assert!(m.codes().all(|c| c == 0));
    }

    #[test]
    fn works_with_all_value_widths() {
        use crate::value::{Value, V16};
        let m32 = MainPartition::from_values(&[3u32, 1, 2]);
        assert_eq!(m32.get(0), 3);
        let m16 = MainPartition::from_values(&[V16::from_seed(9), V16::from_seed(2)]);
        assert_eq!(m16.get(1), V16::from_seed(2));
    }
}

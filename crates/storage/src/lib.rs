//! Column-store substrate (the paper's Section 3 "System Overview").
//!
//! Tables are stored physically as collections of attributes. Each attribute
//! (column) has two partitions:
//!
//! * a **main partition** ([`MainPartition`]) — dictionary-compressed and
//!   read-optimized: a sorted [`Dictionary`] of the column's unique values
//!   plus a bit-packed vector of dictionary codes, `ceil(log2 |U|)` bits per
//!   tuple;
//! * a **delta partition** ([`DeltaPartition`]) — uncompressed and
//!   write-optimized: the raw values in insertion order plus a CSB+ tree
//!   mapping each distinct value to the tuple ids where it occurs.
//!
//! [`Attribute`] pairs the two; [`Table`] holds `N_C` attributes with an
//! insert-only update model (updates insert new versions, deletes invalidate
//! rows in a [`ValidityBitmap`]; "the implicit offset of a tuple is always
//! valid for all attributes of a table").
//!
//! The merge algorithms that fold a delta back into a main partition live in
//! the `hyrise-core` crate; this crate only defines the storage they operate
//! on, plus the accessors the merge needs (sorted leaf traversal, postings
//! scatter, code iteration).

mod attribute;
mod column;
mod delta_partition;
mod dictionary;
mod frozen;
mod main_partition;
mod memory;
mod table;
mod tail;
mod validity;
mod value;

pub use attribute::Attribute;
pub use column::{AnyValue, Column, ColumnType};
pub use delta_partition::{CompressedDelta, DeltaPartition};
pub use dictionary::Dictionary;
pub use frozen::{FrozenDelta, TailRegion};
pub use main_partition::MainPartition;
pub use memory::MemoryReport;
pub use table::{Schema, Table, TableError};
pub use tail::{TailLog, TailReservation, TailSealed};
pub use validity::{AtomicValidity, ValidityBitmap};
pub use value::{Value, V16};

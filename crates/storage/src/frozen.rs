//! The bit-packed frozen delta: the read-only snapshot of a sealed delta,
//! compressed through a per-column local dictionary.
//!
//! While a merge is in flight the engine holds the sealed delta *twice* —
//! once as merge input, once for readers — which is exactly the "second
//! memory term" of the paper's Section 6.1 merge model. Freezing into a
//! local [`Dictionary`] plus a [`BitPackedVec`] of codes cuts that term
//! from `N_D * E_j` raw bytes to `N_D * ceil(log2 |U_D|)` bits (plus the
//! small local dictionary), and lets the frozen side of a scan run the
//! same word-parallel SWAR kernels as the main partition instead of a
//! value-compare fallback.
//!
//! The representation is deliberately *insertion-ordered*: code `i` is the
//! `i`-th sealed row, so merge Stage 2 can stream the codes with a
//! [`SeqCursor`](hyrise_bitpack::SeqCursor) and the local dictionary (which
//! is sorted and unique by construction) doubles as merge Stage 1a's delta
//! dictionary — the frozen delta arrives at the merge *already compressed*.

use crate::dictionary::Dictionary;
use crate::value::Value;
use hyrise_bitpack::{bits_for, BitPackedVec};

/// A sealed, read-only delta stored dictionary-compressed: a sorted local
/// [`Dictionary`] of the delta's distinct values plus bit-packed codes in
/// insertion order.
#[derive(Clone, Debug)]
pub struct FrozenDelta<V: Value> {
    dict: Dictionary<V>,
    codes: BitPackedVec,
}

impl<V: Value> FrozenDelta<V> {
    /// An empty frozen delta (the shape of a freeze with nothing sealed).
    pub fn empty() -> Self {
        Self {
            dict: Dictionary::empty(),
            codes: BitPackedVec::new(1),
        }
    }

    /// Freeze `values` (insertion order): build the sorted local dictionary
    /// and encode every value against it.
    pub fn from_values(values: &[V]) -> Self {
        if values.is_empty() {
            return Self::empty();
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let dict = Dictionary::from_sorted_unique(sorted);
        let bits = bits_for(dict.len());
        let mut codes = BitPackedVec::with_capacity(bits, values.len());
        for v in values {
            let code = dict.code_of(v).expect("frozen value is in its dictionary");
            codes.push(code as u64);
        }
        Self { dict, codes }
    }

    /// Reassemble from parts (the recovery path).
    ///
    /// # Panics
    /// In debug builds, if any code is out of range for `dict`.
    pub fn from_parts(dict: Dictionary<V>, codes: BitPackedVec) -> Self {
        debug_assert!(
            codes.iter().all(|c| (c as usize) < dict.len().max(1)),
            "frozen codes must index the local dictionary"
        );
        Self { dict, codes }
    }

    /// Number of sealed rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if nothing was sealed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The sorted local dictionary (merge Stage 1a's delta dictionary,
    /// ready-made).
    #[inline]
    pub fn dict(&self) -> &Dictionary<V> {
        &self.dict
    }

    /// The bit-packed codes in insertion order (scan them with the SWAR
    /// kernels; stream them with a cursor in merge Stage 2).
    #[inline]
    pub fn codes(&self) -> &BitPackedVec {
        &self.codes
    }

    /// Decode row `i`.
    ///
    /// # Panics
    /// If `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> V {
        self.dict.value_at(self.codes.get(i) as u32)
    }

    /// Decode every row, in insertion order.
    pub fn to_vec(&self) -> Vec<V> {
        self.codes
            .iter()
            .map(|c| self.dict.value_at(c as u32))
            .collect()
    }

    /// Heap bytes of the compressed representation — the quantity
    /// `MemoryReport` charges for a frozen delta.
    pub fn memory_bytes(&self) -> usize {
        self.dict.memory_bytes() + self.codes.packed_bytes()
    }
}

impl<V: Value> Default for FrozenDelta<V> {
    fn default() -> Self {
        Self::empty()
    }
}

/// One region of a column's unmerged tail as seen by a scan: either a
/// sealed, bit-packed [`FrozenDelta`] (scanned with the SWAR kernels in
/// value-id space) or a raw value slice (the active tail / a CSB-backed
/// delta, scanned by value comparison).
#[derive(Clone, Copy)]
pub enum TailRegion<'a, V: Value> {
    /// A sealed delta, dictionary-compressed.
    Packed(&'a FrozenDelta<V>),
    /// Raw values in insertion order.
    Raw(&'a [V]),
}

impl<'a, V: Value> TailRegion<'a, V> {
    /// Rows in this region.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            TailRegion::Packed(f) => f.len(),
            TailRegion::Raw(s) => s.len(),
        }
    }

    /// True if the region holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at region-local row `i`.
    ///
    /// # Panics
    /// If `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> V {
        match self {
            TailRegion::Packed(f) => f.get(i),
            TailRegion::Raw(s) => s[i],
        }
    }

    /// Decode every row in insertion order.
    pub fn iter(self) -> impl Iterator<Item = V> + 'a {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Append `base + i` to `out` for every region-local row `i` whose
    /// value lies in `[lo, hi]`. Packed regions rewrite the bounds into
    /// local value-id space and run the SWAR range kernel; raw regions
    /// compare values.
    pub fn select_in_range_into(&self, lo: &V, hi: &V, base: usize, out: &mut Vec<usize>) {
        match self {
            TailRegion::Packed(f) => {
                if let Some(ids) = f.dict().value_id_range(lo, hi) {
                    f.codes().select_in_range_into(
                        *ids.start() as u64,
                        *ids.end() as u64,
                        base,
                        out,
                    );
                }
            }
            TailRegion::Raw(s) => {
                for (i, v) in s.iter().enumerate() {
                    if v >= lo && v <= hi {
                        out.push(base + i);
                    }
                }
            }
        }
    }

    /// Number of region rows whose value lies in `[lo, hi]` (no row ids
    /// materialized; packed regions use the popcount kernel).
    pub fn count_in_range(&self, lo: &V, hi: &V) -> usize {
        match self {
            TailRegion::Packed(f) => match f.dict().value_id_range(lo, hi) {
                Some(ids) => f
                    .codes()
                    .count_in_range(*ids.start() as u64, *ids.end() as u64),
                None => 0,
            },
            TailRegion::Raw(s) => s.iter().filter(|v| *v >= lo && *v <= hi).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_round_trips_and_compresses() {
        let values: Vec<u64> = (0..10_000).map(|i| i % 37).collect();
        let f = FrozenDelta::from_values(&values);
        assert_eq!(f.len(), values.len());
        assert_eq!(f.dict().len(), 37);
        assert_eq!(f.codes().bits(), 6);
        assert_eq!(f.to_vec(), values);
        for i in [0usize, 1, 36, 37, 9_999] {
            assert_eq!(f.get(i), values[i]);
        }
        // 6 bits/row + a 37-entry dictionary vs 8 raw bytes/row: > 10x.
        let raw = values.len() * <u64 as Value>::BYTES;
        assert!(f.memory_bytes() * 10 < raw, "{} vs {raw}", f.memory_bytes());
    }

    #[test]
    fn empty_freeze() {
        let f = FrozenDelta::<u64>::from_values(&[]);
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        assert_eq!(f.to_vec(), Vec::<u64>::new());
        assert_eq!(f.dict().len(), 0);
    }

    #[test]
    fn dictionary_is_sorted_unique_regardless_of_insertion_order() {
        let values = [9u64, 3, 9, 1, 3, 7];
        let f = FrozenDelta::from_values(&values);
        assert_eq!(f.dict().values(), &[1, 3, 7, 9]);
        assert_eq!(f.to_vec(), values);
    }

    #[test]
    fn tail_region_select_agrees_across_representations() {
        let values: Vec<u64> = (0..500).map(|i| (i * 17) % 101).collect();
        let f = FrozenDelta::from_values(&values);
        let packed = TailRegion::Packed(&f);
        let raw = TailRegion::Raw(&values);
        assert_eq!(packed.len(), raw.len());
        for (lo, hi) in [(0u64, 100u64), (10, 40), (50, 50), (40, 10), (200, 300)] {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            packed.select_in_range_into(&lo, &hi, 1000, &mut a);
            raw.select_in_range_into(&lo, &hi, 1000, &mut b);
            assert_eq!(a, b, "range {lo}..={hi}");
            assert_eq!(
                packed.count_in_range(&lo, &hi),
                raw.count_in_range(&lo, &hi),
                "range {lo}..={hi}"
            );
        }
        for i in (0..500).step_by(37) {
            assert_eq!(packed.get(i), raw.get(i));
        }
    }

    #[test]
    fn v16_values_freeze() {
        use crate::value::V16;
        let values: Vec<V16> = (0..200u64).map(|i| V16::from_seed(i % 9)).collect();
        let f = FrozenDelta::from_values(&values);
        assert_eq!(f.dict().len(), 9);
        assert_eq!(f.to_vec(), values);
    }
}

//! The write-optimized, uncompressed delta partition (`D^j`).

use crate::value::Value;
use hyrise_csb::{CsbTree, Postings};

/// One column's delta partition: values in insertion order, uncompressed,
/// plus a CSB+ tree of all distinct values with their tuple-id lists.
///
/// "In contrast to the main partition, data in the write-optimized delta
/// partition is not compressed. In addition to the uncompressed values, a
/// CSB+ tree with all the unique uncompressed values of the delta partition
/// is maintained per column." (Section 3)
pub struct DeltaPartition<V> {
    values: Vec<V>,
    index: CsbTree<V>,
}

impl<V: Value> Default for DeltaPartition<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// The output of the *modified* Step 1(a) (Section 5.3): the delta's sorted
/// dictionary `U_D` plus the delta rewritten as fixed-width codes into it.
///
/// "In addition to computing the sorted dictionary for the delta partition,
/// we also replace the uncompressed values in the delta partition with their
/// respective indices in the dictionary."
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompressedDelta<V> {
    /// Sorted unique delta values (`U_D`).
    pub dict: Vec<V>,
    /// Per-tuple indices into `dict`, in delta insertion order.
    pub codes: Vec<u32>,
}

impl<V: Value> DeltaPartition<V> {
    /// An empty delta.
    pub fn new() -> Self {
        Self {
            values: Vec::new(),
            index: CsbTree::new(),
        }
    }

    /// Append a value; returns its delta-local tuple id. This is the `T_U`
    /// path of Equation 1 — one uncompressed append plus one CSB+ insert.
    pub fn insert(&mut self, value: V) -> u32 {
        let tid = self.values.len() as u32;
        self.values.push(value);
        self.index.insert(value, tid);
        tid
    }

    /// Value of delta-local tuple `i`. No dictionary lookup is needed: the
    /// delta stores uncompressed values (that is its read advantage and its
    /// memory cost).
    #[inline]
    pub fn get(&self, i: usize) -> V {
        self.values[i]
    }

    /// Number of tuples — the paper's `N_D` for this column.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the delta holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of distinct values — `|U_D|`.
    #[inline]
    pub fn unique_len(&self) -> usize {
        self.index.unique_len()
    }

    /// Fraction of unique values, the paper's `lambda_D` (0 for empty).
    pub fn unique_fraction(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.unique_len() as f64 / self.values.len() as f64
        }
    }

    /// The raw values in insertion order.
    #[inline]
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Delta-local tuple ids holding `value` (point-lookup path for reads
    /// against the delta).
    pub fn lookup(&self, value: &V) -> Option<Postings<'_>> {
        self.index.get(value)
    }

    /// The CSB+ index (range scans walk it via `iter_from`).
    pub fn index(&self) -> &CsbTree<V> {
        &self.index
    }

    /// Unmodified Step 1(a): extract the sorted dictionary `U_D` by a linear
    /// traversal of the tree leaves. `O(|U_D|)`.
    pub fn sorted_unique(&self) -> Vec<V> {
        self.index.sorted_keys()
    }

    /// As [`Self::sorted_unique`], writing into a caller-provided buffer
    /// (cleared first) so repeated merges can reuse one allocation.
    pub fn sorted_unique_into(&self, dict: &mut Vec<V>) {
        dict.clear();
        dict.reserve(self.unique_len());
        dict.extend(self.index.iter().map(|(k, _)| k));
    }

    /// Modified Step 1(a) (Section 5.3): build `U_D` *and* rewrite the delta
    /// as fixed-width codes by walking each leaf value's tuple-id list and
    /// scattering the value's dictionary index to those positions.
    ///
    /// "Although this involves non-contiguous access of the delta partition,
    /// each tuple is only accessed once, hence the run-time is O(N_D)."
    pub fn compress(&self) -> CompressedDelta<V> {
        let mut dict = Vec::new();
        let mut codes = Vec::new();
        self.compress_into(&mut dict, &mut codes);
        CompressedDelta { dict, codes }
    }

    /// As [`Self::compress`], writing into caller-provided buffers (cleared
    /// first). With warm capacities this performs no heap allocation — the
    /// scratch-reuse hook of the merge pipeline's Stage 1a.
    pub fn compress_into(&self, dict: &mut Vec<V>, codes: &mut Vec<u32>) {
        dict.clear();
        dict.reserve(self.unique_len());
        codes.clear();
        codes.resize(self.values.len(), 0);
        for (next_code, (value, postings)) in self.index.iter().enumerate() {
            dict.push(value);
            for tid in postings {
                codes[tid as usize] = next_code as u32;
            }
        }
    }

    /// Heap bytes: raw values plus the CSB+ tree (the paper charges the tree
    /// at ~2x the value bytes in Step 1(a)'s bandwidth term).
    pub fn memory_bytes(&self) -> usize {
        self.values.len() * V::BYTES + self.index.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The delta partition of the paper's Figures 5/6:
    /// bravo charlie golf charlie young as integers 2 3 7 3 25.
    fn figure5_delta() -> DeltaPartition<u64> {
        let mut d = DeltaPartition::new();
        for v in [2u64, 3, 7, 3, 25] {
            d.insert(v);
        }
        d
    }

    #[test]
    fn insert_assigns_sequential_tids() {
        let mut d = DeltaPartition::new();
        assert_eq!(d.insert(10u64), 0);
        assert_eq!(d.insert(20), 1);
        assert_eq!(d.insert(10), 2);
        assert_eq!(d.len(), 3);
        assert_eq!(d.unique_len(), 2);
        assert_eq!(d.get(2), 10);
    }

    #[test]
    fn figure6_step1a_dictionary_and_codes() {
        // Figure 6: delta dictionary bravo charlie golf young -> 00 01 10 11,
        // compressed delta partition: 00 01 10 01 11.
        let d = figure5_delta();
        let c = d.compress();
        assert_eq!(c.dict, vec![2, 3, 7, 25]);
        assert_eq!(c.codes, vec![0, 1, 2, 1, 3]);
    }

    #[test]
    fn sorted_unique_matches_compress_dict() {
        let d = figure5_delta();
        assert_eq!(d.sorted_unique(), d.compress().dict);
    }

    #[test]
    fn lookup_returns_all_positions() {
        let d = figure5_delta();
        let ids: Vec<u32> = d.lookup(&3).unwrap().collect();
        assert_eq!(ids, vec![1, 3]);
        assert!(d.lookup(&99).is_none());
    }

    #[test]
    fn empty_delta() {
        let d: DeltaPartition<u64> = DeltaPartition::new();
        assert!(d.is_empty());
        assert_eq!(d.unique_len(), 0);
        assert_eq!(d.unique_fraction(), 0.0);
        let c = d.compress();
        assert!(c.dict.is_empty());
        assert!(c.codes.is_empty());
    }

    #[test]
    fn compress_is_consistent_on_large_random_delta() {
        let mut d = DeltaPartition::new();
        let mut x = 88172645463325252u64;
        let mut raw = Vec::new();
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x % 1500;
            raw.push(v);
            d.insert(v);
        }
        let c = d.compress();
        // dict is sorted unique
        assert!(c.dict.windows(2).all(|w| w[0] < w[1]));
        // decoding codes through dict reproduces the raw delta
        let decoded: Vec<u64> = c.codes.iter().map(|&i| c.dict[i as usize]).collect();
        assert_eq!(decoded, raw);
    }

    #[test]
    fn unique_fraction_lambda_d() {
        let mut d = DeltaPartition::new();
        for i in 0..1000u64 {
            d.insert(i % 10);
        }
        assert!((d.unique_fraction() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn uncompressed_memory_grows_with_value_width() {
        use crate::value::V16;
        let mut d8 = DeltaPartition::new();
        let mut d16 = DeltaPartition::new();
        for i in 0..1000u64 {
            d8.insert(i);
            d16.insert(V16::from_seed(i));
        }
        assert!(d16.memory_bytes() > d8.memory_bytes());
        assert!(d8.memory_bytes() >= 8 * 1000);
    }
}

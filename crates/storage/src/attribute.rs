//! An attribute = main partition + delta partition for one column.

use crate::delta_partition::DeltaPartition;
use crate::main_partition::MainPartition;
use crate::value::Value;

/// One column of a table: the compressed main partition and the uncompressed
/// delta accumulating updates until the next merge. Tuple ids are global:
/// `0..main.len()` live in main, `main.len()..len()` in the delta.
pub struct Attribute<V> {
    main: MainPartition<V>,
    delta: DeltaPartition<V>,
}

impl<V: Value> Default for Attribute<V> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<V: Value> Attribute<V> {
    /// An attribute with empty main and delta.
    pub fn empty() -> Self {
        Self {
            main: MainPartition::empty(),
            delta: DeltaPartition::new(),
        }
    }

    /// Start from a bulk-loaded main partition.
    pub fn from_main(main: MainPartition<V>) -> Self {
        Self {
            main,
            delta: DeltaPartition::new(),
        }
    }

    /// Build from explicit parts (merge commit path).
    pub fn from_parts(main: MainPartition<V>, delta: DeltaPartition<V>) -> Self {
        Self { main, delta }
    }

    /// Append a value to the delta; returns the new global tuple id.
    pub fn append(&mut self, value: V) -> usize {
        let local = self.delta.insert(value);
        self.main.len() + local as usize
    }

    /// Value of global tuple `i`, reading main or delta as appropriate.
    #[inline]
    pub fn get(&self, i: usize) -> V {
        let nm = self.main.len();
        if i < nm {
            self.main.get(i)
        } else {
            self.delta.get(i - nm)
        }
    }

    /// Total tuples (`N_M + N_D`).
    #[inline]
    pub fn len(&self) -> usize {
        self.main.len() + self.delta.len()
    }

    /// True if neither partition holds tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The read-optimized partition.
    #[inline]
    pub fn main(&self) -> &MainPartition<V> {
        &self.main
    }

    /// The write-optimized partition.
    #[inline]
    pub fn delta(&self) -> &DeltaPartition<V> {
        &self.delta
    }

    /// Mutable delta access (insert path).
    #[inline]
    pub fn delta_mut(&mut self) -> &mut DeltaPartition<V> {
        &mut self.delta
    }

    /// Replace both partitions atomically from the caller's perspective
    /// (used by the merge commit: `main := merged`, `delta := second delta`).
    pub fn replace(&mut self, main: MainPartition<V>, delta: DeltaPartition<V>) {
        self.main = main;
        self.delta = delta;
    }

    /// Delta size as a fraction of main size, `N_D / max(N_M, 1)` — always
    /// **finite**: an empty main with a non-empty delta reads as `N_D`
    /// (which exceeds any sane trigger threshold) rather than `inf`, so
    /// custom merge-policy arithmetic never sees a non-finite value. The
    /// merge trigger compares this against a configured threshold
    /// (Section 4: "we trigger the merging of partitions when the number of
    /// tuples N_D in the delta partition is greater than a certain
    /// pre-defined fraction of tuples in the main partition N_M").
    pub fn delta_fraction(&self) -> f64 {
        self.delta.len() as f64 / self.main.len().max(1) as f64
    }

    /// Heap bytes across both partitions.
    pub fn memory_bytes(&self) -> usize {
        self.main.memory_bytes() + self.delta.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_tuple_ids_span_main_and_delta() {
        let mut a = Attribute::from_main(MainPartition::from_values(&[10u64, 20, 30]));
        assert_eq!(a.len(), 3);
        let id = a.append(40);
        assert_eq!(id, 3);
        let id = a.append(50);
        assert_eq!(id, 4);
        assert_eq!(a.get(0), 10);
        assert_eq!(a.get(2), 30);
        assert_eq!(a.get(3), 40);
        assert_eq!(a.get(4), 50);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn empty_attribute_appends_to_delta() {
        let mut a: Attribute<u32> = Attribute::empty();
        assert_eq!(a.append(7), 0);
        assert_eq!(a.get(0), 7);
        assert_eq!(a.main().len(), 0);
        assert_eq!(a.delta().len(), 1);
    }

    #[test]
    fn delta_fraction_drives_merge_trigger() {
        let mut a =
            Attribute::from_main(MainPartition::from_values(&(0u64..100).collect::<Vec<_>>()));
        assert_eq!(a.delta_fraction(), 0.0);
        for i in 0..5 {
            a.append(i);
        }
        assert!((a.delta_fraction() - 0.05).abs() < 1e-12);

        let mut b: Attribute<u64> = Attribute::empty();
        assert_eq!(b.delta_fraction(), 0.0);
        b.append(1);
        b.append(2);
        assert_eq!(
            b.delta_fraction(),
            2.0,
            "empty main reads as N_D / 1 — finite, above any sane trigger"
        );
        assert!(b.delta_fraction().is_finite());
    }

    #[test]
    fn replace_swaps_partitions() {
        let mut a = Attribute::from_main(MainPartition::from_values(&[1u64, 2]));
        a.append(3);
        let merged = MainPartition::from_values(&[1u64, 2, 3]);
        let mut second_delta = DeltaPartition::new();
        second_delta.insert(99);
        a.replace(merged, second_delta);
        assert_eq!(a.len(), 4);
        assert_eq!(a.get(2), 3);
        assert_eq!(a.get(3), 99);
    }
}

//! Memory accounting: where the bytes live, per partition component.
//!
//! Section 2's case for dictionary compression ("columns with a small number
//! of distinct values and a large value size heavily profit") and Section 4's
//! case against large deltas ("memory consumption increases") are both
//! statements about this breakdown, so the substrate can report it.

use crate::attribute::Attribute;
use crate::column::Column;
use crate::delta_partition::DeltaPartition;
use crate::frozen::FrozenDelta;
use crate::main_partition::MainPartition;
use crate::table::Table;
use crate::value::Value;

/// Byte breakdown of one attribute.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryReport {
    /// Bit-packed code vector of the main partition.
    pub main_codes: usize,
    /// Main dictionary values.
    pub main_dict: usize,
    /// Uncompressed delta values.
    pub delta_values: usize,
    /// CSB+ tree (nodes + postings).
    pub delta_index: usize,
    /// Local dictionaries of bit-packed frozen deltas (sealed mid-merge
    /// snapshots), counted at their compressed size.
    pub frozen_dict: usize,
    /// Bit-packed code vectors of frozen deltas.
    pub frozen_codes: usize,
}

impl MemoryReport {
    /// Measure an attribute.
    pub fn of_attribute<V: Value>(attr: &Attribute<V>) -> Self {
        let main = attr.main();
        let delta = attr.delta();
        Self {
            main_codes: main.packed_codes().packed_bytes(),
            main_dict: main.dictionary().memory_bytes(),
            delta_values: delta.len() * V::BYTES,
            delta_index: delta.index().memory_bytes(),
            ..Self::default()
        }
    }

    /// Measure one column given as bare partitions — the shape the online
    /// merge protocol holds (a main partition plus any number of delta
    /// partitions: the active one, and the frozen one while a merge is in
    /// flight). This is what table-level memory *pressure* samples are
    /// built from: a resource governor that shrinks merge budgets wants the
    /// same per-component accounting as [`Self::of_attribute`], without
    /// requiring the column to live inside an [`Attribute`].
    pub fn of_partitions<V: Value>(main: &MainPartition<V>, deltas: &[&DeltaPartition<V>]) -> Self {
        Self {
            main_codes: main.packed_codes().packed_bytes(),
            main_dict: main.dictionary().memory_bytes(),
            delta_values: deltas.iter().map(|d| d.len() * V::BYTES).sum(),
            delta_index: deltas.iter().map(|d| d.index().memory_bytes()).sum(),
            ..Self::default()
        }
    }

    /// Measure a bit-packed frozen delta at its *compressed* size — the
    /// footprint the governor and the admission gate should see while a
    /// merge is in flight, not the raw bytes the delta once occupied.
    pub fn of_frozen<V: Value>(frozen: &FrozenDelta<V>) -> Self {
        Self {
            frozen_dict: frozen.dict().memory_bytes(),
            frozen_codes: frozen.codes().packed_bytes(),
            ..Self::default()
        }
    }

    /// Measure one (dynamically typed) column.
    pub fn of_column(col: &Column) -> Self {
        match col {
            Column::U32(a) => Self::of_attribute(a),
            Column::U64(a) => Self::of_attribute(a),
            Column::V16(a) => Self::of_attribute(a),
        }
    }

    /// Sum over all columns of a table.
    pub fn of_table(table: &Table) -> Self {
        table
            .columns()
            .iter()
            .map(Self::of_column)
            .fold(Self::default(), |a, b| a + b)
    }

    /// Total bytes.
    pub fn total(&self) -> usize {
        self.main_codes
            + self.main_dict
            + self.delta_values
            + self.delta_index
            + self.frozen_dict
            + self.frozen_codes
    }

    /// Bytes attributable to the read-optimized side.
    pub fn main_total(&self) -> usize {
        self.main_codes + self.main_dict
    }

    /// Bytes attributable to the write-optimized side — what the merge
    /// reclaims. Frozen deltas count here (at compressed size): they are
    /// sealed write-side rows a completed merge absorbs.
    pub fn delta_total(&self) -> usize {
        self.delta_values + self.delta_index + self.frozen_dict + self.frozen_codes
    }

    /// Compression factor of the main partition vs storing `n_main` raw
    /// values of `value_bytes` each (> 1 means compressed is smaller).
    pub fn main_compression_factor(&self, n_main: usize, value_bytes: usize) -> f64 {
        if self.main_total() == 0 {
            return 1.0;
        }
        (n_main * value_bytes) as f64 / self.main_total() as f64
    }
}

impl std::ops::Add for MemoryReport {
    type Output = MemoryReport;

    fn add(self, rhs: MemoryReport) -> MemoryReport {
        MemoryReport {
            main_codes: self.main_codes + rhs.main_codes,
            main_dict: self.main_dict + rhs.main_dict,
            delta_values: self.delta_values + rhs.delta_values,
            delta_index: self.delta_index + rhs.delta_index,
            frozen_dict: self.frozen_dict + rhs.frozen_dict,
            frozen_codes: self.frozen_codes + rhs.frozen_codes,
        }
    }
}

impl std::fmt::Display for MemoryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "main codes {} B + dict {} B | delta values {} B + index {} B | \
             frozen codes {} B + dict {} B = {} B",
            self.main_codes,
            self.main_dict,
            self.delta_values,
            self.delta_index,
            self.frozen_codes,
            self.frozen_dict,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{AnyValue, ColumnType};
    use crate::main_partition::MainPartition;
    use crate::table::{Schema, Table};
    use crate::value::V16;

    #[test]
    fn breakdown_of_mixed_attribute() {
        let mut a = Attribute::from_main(MainPartition::from_values(
            &(0..10_000u64).map(|i| i % 8).collect::<Vec<_>>(),
        ));
        for i in 0..1_000u64 {
            a.append(i % 16);
        }
        let r = MemoryReport::of_attribute(&a);
        // 10K tuples at 3 bits = 3750 bytes rounded to words.
        assert_eq!(r.main_codes, (10_000 * 3usize).div_ceil(64) * 8);
        assert_eq!(r.main_dict, 8 * 8);
        assert_eq!(r.delta_values, 1_000 * 8);
        assert!(r.delta_index > 0);
        assert_eq!(r.total(), a.memory_bytes());
    }

    #[test]
    fn low_cardinality_wide_values_compress_heavily() {
        // The Figure 4 premise: 8 distinct 16-byte values over 50K rows.
        let vals: Vec<V16> = (0..50_000u64).map(|i| V16::from_seed(i % 8)).collect();
        let a = Attribute::from_main(MainPartition::from_values(&vals));
        let r = MemoryReport::of_attribute(&a);
        let factor = r.main_compression_factor(50_000, V16::BYTES);
        // 16 B -> 3 bits: ~42x. Allow word-rounding slack.
        assert!(factor > 30.0, "compression factor {factor}");
    }

    #[test]
    fn of_partitions_matches_attribute_accounting() {
        let mut a = Attribute::from_main(MainPartition::from_values(
            &(0..5_000u64).map(|i| i % 37).collect::<Vec<_>>(),
        ));
        for i in 0..300u64 {
            a.append(i % 64);
        }
        let via_attr = MemoryReport::of_attribute(&a);
        let via_parts = MemoryReport::of_partitions(a.main(), &[a.delta()]);
        assert_eq!(via_attr, via_parts);
        // Two deltas (the mid-merge frozen + active shape) sum component-wise.
        let two = MemoryReport::of_partitions(a.main(), &[a.delta(), a.delta()]);
        assert_eq!(two.delta_values, 2 * via_parts.delta_values);
        assert_eq!(two.delta_index, 2 * via_parts.delta_index);
        assert_eq!(two.main_total(), via_parts.main_total());
        // No deltas: the read-optimized side only.
        let none = MemoryReport::of_partitions::<u64>(a.main(), &[]);
        assert_eq!(none.delta_total(), 0);
        assert_eq!(none.main_total(), via_parts.main_total());
    }

    #[test]
    fn delta_total_is_what_merging_reclaims() {
        let mut a = Attribute::from_main(MainPartition::from_values(&[1u64, 2, 3]));
        for i in 0..100u64 {
            a.append(i);
        }
        let r = MemoryReport::of_attribute(&a);
        assert!(r.delta_total() > r.main_total());
        assert_eq!(r.delta_total(), r.delta_values + r.delta_index);
    }

    #[test]
    fn table_report_sums_columns() {
        let mut t = Table::new(
            "t",
            Schema::new(vec![("a", ColumnType::U64), ("b", ColumnType::U32)]),
        );
        for i in 0..500u64 {
            t.insert_row(&[AnyValue::U64(i % 10), AnyValue::U32((i % 3) as u32)])
                .unwrap();
        }
        let r = MemoryReport::of_table(&t);
        let per_col: usize = t
            .columns()
            .iter()
            .map(|c| MemoryReport::of_column(c).total())
            .sum();
        assert_eq!(r.total(), per_col);
        assert_eq!(r.total(), t.memory_bytes());
    }

    #[test]
    fn freezing_a_compressible_tail_strictly_reduces_reported_bytes() {
        // A compressible sealed tail: 20K rows, 50 distinct values. Raw
        // accounting charges 8 B/row; frozen accounting charges 6 bits/row
        // plus a 50-entry dictionary.
        let values: Vec<u64> = (0..20_000).map(|i| i % 50).collect();
        let raw = MemoryReport {
            delta_values: values.len() * <u64 as Value>::BYTES,
            ..MemoryReport::default()
        };
        let frozen = MemoryReport::of_frozen(&FrozenDelta::from_values(&values));
        assert!(
            frozen.total() < raw.total(),
            "compressed {} must be below raw {}",
            frozen.total(),
            raw.total()
        );
        assert_eq!(frozen.delta_total(), frozen.total(), "frozen is write-side");
        assert_eq!(frozen.main_total(), 0);
        assert_eq!(
            frozen.frozen_codes,
            (20_000usize * 6).div_ceil(64) * 8,
            "codes charged at bit-packed size"
        );
        assert_eq!(frozen.frozen_dict, 50 * 8);
    }

    #[test]
    fn display_is_informative() {
        let a: Attribute<u64> = Attribute::empty();
        let s = MemoryReport::of_attribute(&a).to_string();
        assert!(s.contains("main codes"), "{s}");
        assert!(s.contains("= 0 B"), "{s}");
    }
}
